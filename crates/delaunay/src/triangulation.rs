//! Incremental Delaunay triangulation: Bowyer–Watson insertion with ghost
//! triangles, Hilbert-ordered insertion, and a stochastic remembering walk
//! for point location.
//!
//! # Algorithm
//!
//! * **Ghost triangles** close the mesh: every hull edge `a→b` (CCW, region
//!   on its left) has a ghost triangle on the reversed edge `b→a` whose
//!   third vertex is the symbolic [`GHOST`]. Point location and cavity
//!   carving then need no boundary cases; inserting outside the hull is the
//!   same code path as inserting inside.
//! * **Bowyer–Watson**: each insertion locates the triangle whose (possibly
//!   ghost) circumdisk contains the new point, grows the *cavity* of all
//!   such triangles by breadth-first search, deletes it, and re-triangulates
//!   by fanning the new vertex to the cavity boundary.
//! * **Robustness**: all orientation and in-circle decisions go through the
//!   adaptive exact predicates in [`vaq_geom::predicates`], so the structure
//!   is correct even for the cocircular / collinear degeneracies that grid
//!   data produces. Inputs that are *entirely* collinear (including n = 1, 2)
//!   cannot be triangulated; they fall back to a **degenerate path mode** in
//!   which the Delaunay graph is the sorted path along the line — the
//!   correct limit of the Voronoi adjacency.
//! * **Duplicates** (exactly equal coordinates) are merged up front; every
//!   input index maps to a canonical vertex via [`Triangulation::canonical`]
//!   and back via [`Triangulation::inputs_of`].
//! * **Metric genericity**: [`Triangulation`] is parameterised by a
//!   [`DiagramMetric`]. The default [`Euclidean`] metric compiles to the
//!   unweighted algorithm (bit-identical to the pre-generic code); building
//!   with non-uniform site weights via
//!   [`Triangulation::with_site_metric`] produces the **regular
//!   triangulation** (dual of the power diagram) instead, using the exact
//!   [`power_incircle`] conflict predicate. Weighted sites may be *hidden*
//!   — dominated everywhere, owning no cell and no mesh vertex; they are
//!   reported by [`Triangulation::hidden_vertices`] and every hidden site
//!   carries a live *anchor* so graph walks never stall on it.

use crate::hilbert::hilbert_sort;
use crate::mesh::{Mesh, GHOST, NONE};
use crate::metric::{
    weights_are_uniform, DiagramKind, DiagramMetric, Euclidean, PowerWeights, SiteMetric,
};
use vaq_geom::{incircle, orient2d, power_incircle, Point};

/// Order in which points are fed to the incremental algorithm.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InsertionOrder {
    /// Sort along a Hilbert curve first (fast: walks are `O(1)` expected).
    #[default]
    Hilbert,
    /// Insert in input order (ablation baseline; walks can be `O(√n)`).
    Input,
}

/// Errors from [`Triangulation::new`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DelaunayError {
    /// The input point slice was empty.
    EmptyInput,
    /// A coordinate was NaN or infinite; payload is the input index.
    NonFiniteCoordinate(usize),
    /// A site weight was NaN or infinite; payload is the input index.
    NonFiniteWeight(usize),
    /// The weight slice length did not match the point slice length.
    WeightCountMismatch {
        /// Number of points supplied.
        expected: usize,
        /// Number of weights supplied.
        got: usize,
    },
}

impl std::fmt::Display for DelaunayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DelaunayError::EmptyInput => write!(f, "cannot triangulate an empty point set"),
            DelaunayError::NonFiniteCoordinate(i) => {
                write!(f, "point at input index {i} has a non-finite coordinate")
            }
            DelaunayError::NonFiniteWeight(i) => {
                write!(f, "weight at input index {i} is not finite")
            }
            DelaunayError::WeightCountMismatch { expected, got } => {
                write!(f, "expected {expected} weights (one per point), got {got}")
            }
        }
    }
}

impl std::error::Error for DelaunayError {}

/// Result of locating a point in the triangulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Locate {
    /// The point coincides exactly with this vertex.
    Vertex(u32),
    /// The point lies inside (or on the boundary of) this finite triangle.
    Face(u32),
    /// The point lies strictly outside the convex hull; payload is a ghost
    /// triangle whose hull edge faces the point.
    Outside(u32),
    /// The triangulation is in degenerate (collinear) mode and has no
    /// triangles to locate in.
    Degenerate,
}

/// A cavity-boundary edge recorded during Bowyer–Watson carving.
#[derive(Clone, Copy)]
struct BoundaryEdge {
    /// Directed edge `(a, b)` with the cavity (and the new point) on its left.
    a: u32,
    b: u32,
    /// The surviving triangle on the outside of the edge.
    outer: u32,
}

/// xorshift64* step; cheap deterministic randomness for the stochastic walk.
#[inline]
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Internal construction state shared by the walk and insertion routines.
struct Core {
    pts: Vec<Point>,
    /// Canonical site weights; empty for an unweighted (Euclidean) build.
    w: Vec<f64>,
    mesh: Mesh,
    /// Per-slot visit stamps for cavity BFS (avoids clearing a bitmap).
    stamps: Vec<u32>,
    epoch: u32,
    /// A live finite triangle used as the walk start hint.
    last_finite: u32,
    rng: u64,
    /// Scratch buffers reused across insertions.
    stack: Vec<u32>,
    bad: Vec<u32>,
    boundary: Vec<BoundaryEdge>,
    new_tris: Vec<(u32, u32, u32)>, // (a, triangle id, b) per boundary edge
}

impl Core {
    /// `true` when triangle `t` is in conflict with the new site `(p, pw)`:
    /// its (possibly ghost) circumdisk strictly contains `p` in the
    /// unweighted case, or `(p, pw)` beats its orthocircle in the weighted
    /// case. `pw` is ignored for unweighted builds.
    fn is_bad(&self, t: u32, p: Point, pw: f64) -> bool {
        let tri = self.mesh.tri(t);
        match tri.ghost_slot() {
            None => {
                let [i, j, k] = tri.v;
                let a = self.pts[i as usize];
                let b = self.pts[j as usize];
                let c = self.pts[k as usize];
                if self.w.is_empty() {
                    incircle(a, b, c, p) > 0.0
                } else {
                    power_incircle(
                        a,
                        b,
                        c,
                        p,
                        self.w[i as usize],
                        self.w[j as usize],
                        self.w[k as usize],
                        pw,
                    ) > 0.0
                }
            }
            Some(g) => {
                // Ghost circumdisk = open half-plane strictly left of the
                // reversed hull edge (u, v), plus the open edge itself.
                let u = self.pts[tri.v[(g + 1) % 3] as usize];
                let v = self.pts[tri.v[(g + 2) % 3] as usize];
                let o = orient2d(u, v, p);
                if o != 0.0 {
                    // Strictly outside the hull across this edge: the site
                    // is extreme in that direction, hence live, and the
                    // ghost conflicts regardless of weights.
                    return o > 0.0;
                }
                let d = v - u;
                let on_open_edge = (p - u).dot(d) > 0.0 && (v - p).dot(d) > 0.0;
                if !on_open_edge {
                    return false;
                }
                if self.w.is_empty() {
                    return true;
                }
                // Weighted on-edge case: a site exactly on the open hull
                // edge is live iff its lifted point lies strictly below the
                // lifted edge, which equals the finite neighbour's lifted
                // plane restricted to the edge — so the ghost conflicts iff
                // the finite triangle behind the hull edge does. (In the
                // Euclidean case that triangle is always in conflict, so
                // this degenerates to the unconditional `true` above.)
                self.is_bad(tri.n[g], p, pw)
            }
        }
    }

    /// Stochastic remembering walk from `start` (a live finite triangle).
    fn walk(&mut self, p: Point, start: u32) -> Locate {
        let mut t = start;
        let mut prev = NONE;
        // With exact predicates the stochastic walk terminates with
        // probability 1; the cap only guards against an implementation bug.
        let max_steps = 4 * self.mesh.slots() + 64;
        for _ in 0..max_steps {
            let tri = *self.mesh.tri(t);
            if tri.is_ghost() {
                // Check for coincidence with the hull vertices first.
                let g = tri.ghost_slot().expect("is_ghost");
                for k in 1..3 {
                    let w = tri.v[(g + k) % 3];
                    if self.pts[w as usize] == p {
                        return Locate::Vertex(w);
                    }
                }
                return Locate::Outside(t);
            }
            let r = (next_rand(&mut self.rng) % 3) as usize;
            let mut next = NONE;
            for k in 0..3 {
                let i = (r + k) % 3;
                if tri.n[i] == prev {
                    continue;
                }
                let (a, b) = tri.edge(i);
                if orient2d(self.pts[a as usize], self.pts[b as usize], p) < 0.0 {
                    next = tri.n[i];
                    break;
                }
            }
            if next == NONE {
                for i in 0..3 {
                    if self.pts[tri.v[i] as usize] == p {
                        return Locate::Vertex(tri.v[i]);
                    }
                }
                return Locate::Face(t);
            }
            prev = t;
            t = next;
        }
        // vaq-lint: allow(panic-hygiene) -- the walk over a consistent
        // mesh strictly approaches `p` (each step crosses an edge whose
        // far side contains it); non-termination means the neighbour
        // links are corrupt, which no error value could repair.
        unreachable!("point-location walk failed to terminate (mesh corrupt?)");
    }

    /// Inserts vertex `vid` (coordinates already in `pts`) after locating
    /// its containing region. In a weighted build a located site whose
    /// region is **not** in power conflict is *hidden* — its lifted point
    /// lies on or above the current lower hull — and is skipped entirely
    /// (it owns no cell; hiding is monotone under later insertions, so the
    /// decision is final).
    fn insert_in_cavity(&mut self, vid: u32, p: Point) {
        let pw = if self.w.is_empty() {
            0.0
        } else {
            self.w[vid as usize]
        };
        let seed = match self.walk(p, self.last_finite) {
            Locate::Vertex(_) => {
                // Duplicates are merged before insertion; tolerate anyway.
                debug_assert!(false, "duplicate point reached insertion");
                return;
            }
            Locate::Face(t) | Locate::Outside(t) => t,
            // vaq-lint: allow(panic-hygiene) -- `walk` constructs every
            // other Locate variant itself; Degenerate only flows out of
            // the pre-walk guards, which insert_in_cavity never takes.
            Locate::Degenerate => unreachable!("walk never returns Degenerate"),
        };

        // Hidden-at-insert check (weighted only: an unweighted located
        // region always strictly contains the new point in its circumdisk,
        // and an `Outside` ghost seed conflicts by orientation alone).
        if !self.w.is_empty() && !self.is_bad(seed, p, pw) {
            return;
        }

        // Grow the cavity of strictly-bad triangles by BFS from the seed.
        self.epoch += 1;
        let epoch = self.epoch;
        self.stamps.resize(self.mesh.slots(), 0);
        self.stack.clear();
        self.bad.clear();
        self.boundary.clear();
        self.stamps[seed as usize] = epoch;
        self.stack.push(seed);
        while let Some(t) = self.stack.pop() {
            self.bad.push(t);
            let tri = *self.mesh.tri(t);
            for i in 0..3 {
                let nb = tri.n[i];
                if self.stamps[nb as usize] == epoch {
                    continue;
                }
                if self.is_bad(nb, p, pw) {
                    self.stamps[nb as usize] = epoch;
                    self.stack.push(nb);
                } else {
                    let (a, b) = tri.edge(i);
                    self.boundary.push(BoundaryEdge { a, b, outer: nb });
                }
            }
        }

        // Delete the cavity; its slots are recycled by the fan below.
        for k in 0..self.bad.len() {
            let t = self.bad[k];
            self.mesh.release(t);
        }

        // Fan the new vertex to every boundary edge. Each new triangle is
        // (a, b, vid): CCW when finite (the cavity, hence vid, lies on the
        // left of (a, b)); ghosts (a or b == GHOST) keep the convention that
        // the finite cyclic edge is the reversed hull edge.
        self.new_tris.clear();
        let mut finite_example = NONE;
        for k in 0..self.boundary.len() {
            let e = self.boundary[k];
            let t = self.mesh.alloc([e.a, e.b, vid]);
            if e.a != GHOST && e.b != GHOST {
                finite_example = t;
            }
            self.new_tris.push((e.a, t, e.b));
        }
        self.stamps.resize(self.mesh.slots(), 0);

        // Link each new triangle to the outside survivor and to its two
        // siblings around vid. The cavity boundary is a single cycle, so the
        // sibling starting at `b` is unique; the boundary is small (typically
        // < 10 edges) so a linear scan beats hashing.
        for k in 0..self.boundary.len() {
            let e = self.boundary[k];
            let (_, t, b) = self.new_tris[k];
            self.mesh.link(t, 2, e.outer);
            let next = self
                .new_tris
                .iter()
                .find(|&&(a2, _, _)| a2 == b)
                .map(|&(_, t2, _)| t2)
                .expect("cavity boundary is a closed cycle");
            // Edge (b, vid) is opposite slot 0 of t; the reversed edge
            // (vid, b) is opposite slot 1 of the sibling.
            // vaq-lint: allow(panic-hygiene) -- `n` is a fixed [u32; 3];
            // constant in-bounds indexing cannot panic.
            self.mesh.tri_mut(t).n[0] = next;
            // vaq-lint: allow(panic-hygiene) -- same fixed-array slot
            // write as the line above.
            self.mesh.tri_mut(next).n[1] = t;
        }

        debug_assert!(
            finite_example != NONE,
            "insertion created no finite triangle"
        );
        self.last_finite = finite_example;
    }
}

/// An immutable Delaunay (or regular) triangulation with precomputed
/// Voronoi-neighbour adjacency (the paper's `VN(P, p)` oracle).
///
/// Build once with [`Triangulation::new`] (Euclidean) or
/// [`Triangulation::with_site_metric`] (runtime-selected, possibly
/// weighted); query adjacency, location and nearest vertices afterwards.
/// Input points may contain exact duplicates — they are merged into
/// canonical vertices, with both directions of the mapping exposed.
///
/// The type parameter is the [`DiagramMetric`] the structure was built
/// under; the default [`Euclidean`] is a zero-sized type and that
/// instantiation is bit-identical to the pre-generic unweighted code.
pub struct Triangulation<M: DiagramMetric = Euclidean> {
    /// Unique (canonical) points, indexed by vertex id.
    pts: Vec<Point>,
    /// Input index → canonical vertex id.
    canon: Vec<u32>,
    /// CSR: canonical vertex → the input indices that collapsed onto it.
    members_off: Vec<u32>,
    members: Vec<u32>,
    mesh: Mesh,
    /// CSR adjacency over canonical vertices (each row sorted ascending).
    adj_off: Vec<u32>,
    adj: Vec<u32>,
    /// Hull vertices in CCW order; in degenerate mode, the path order
    /// (weighted degenerate mode: the *live* path order).
    hull: Vec<u32>,
    degenerate: bool,
    last_finite: u32,
    /// The metric the structure was built under.
    metric: M,
    /// Hidden canonical vertices, sorted ascending (weighted builds only;
    /// always empty for Euclidean builds).
    hidden: Vec<u32>,
    /// For each canonical vertex, a live vertex to stand in for it during
    /// graph walks: identity for live vertices, a power-nearest live
    /// vertex for hidden ones. Empty when no vertex is hidden.
    anchor: Vec<u32>,
}

/// Everything a build produces except the metric (which the public
/// constructors attach afterwards).
struct Parts {
    pts: Vec<Point>,
    canon: Vec<u32>,
    members_off: Vec<u32>,
    members: Vec<u32>,
    mesh: Mesh,
    adj_off: Vec<u32>,
    adj: Vec<u32>,
    hull: Vec<u32>,
    degenerate: bool,
    last_finite: u32,
    hidden: Vec<u32>,
    anchor: Vec<u32>,
    /// Canonical weights (empty for Euclidean builds).
    cw: Vec<f64>,
}

/// Shared input validation for all constructors.
fn validate_points(points: &[Point]) -> Result<(), DelaunayError> {
    if points.is_empty() {
        return Err(DelaunayError::EmptyInput);
    }
    if let Some(i) = points.iter().position(|p| !p.is_finite()) {
        return Err(DelaunayError::NonFiniteCoordinate(i));
    }
    Ok(())
}

impl Triangulation<Euclidean> {
    /// Builds the Delaunay triangulation of `points` with Hilbert-ordered
    /// insertion.
    ///
    /// # Errors
    ///
    /// [`DelaunayError::EmptyInput`] for an empty slice and
    /// [`DelaunayError::NonFiniteCoordinate`] if any coordinate is NaN or
    /// infinite. Collinear input (including 1 or 2 points) is *not* an
    /// error; it produces a triangulation in degenerate path mode (see
    /// [`Triangulation::is_degenerate`]).
    pub fn new(points: &[Point]) -> Result<Triangulation, DelaunayError> {
        Triangulation::with_order(points, InsertionOrder::Hilbert)
    }

    /// As [`Triangulation::new`] with an explicit insertion order.
    pub fn with_order(
        points: &[Point],
        order: InsertionOrder,
    ) -> Result<Triangulation, DelaunayError> {
        validate_points(points)?;
        Ok(Triangulation::from_parts(
            build_parts(points, order, None),
            Euclidean,
        ))
    }
}

impl Triangulation<SiteMetric> {
    /// Builds the triangulation under a runtime-selected metric:
    /// unweighted (`weights == None`) or a regular triangulation of the
    /// weighted sites, with Hilbert-ordered insertion.
    ///
    /// **Uniform weights normalize away**: if every weight is equal
    /// (including the all-zero case), a uniform shift cancels out of every
    /// power comparison, so the build delegates to the Euclidean path and
    /// the result — including [`Triangulation::diagram_kind`] — is
    /// bit-identical to an unweighted build.
    ///
    /// Coincident input sites collapse onto one canonical vertex carrying
    /// the **maximum** weight of the group (the heavier site dominates the
    /// lighter ones everywhere).
    ///
    /// # Errors
    ///
    /// As [`Triangulation::new`], plus
    /// [`DelaunayError::WeightCountMismatch`] if the weight slice length
    /// differs from the point count and [`DelaunayError::NonFiniteWeight`]
    /// if any weight is NaN or infinite.
    pub fn with_site_metric(
        points: &[Point],
        weights: Option<&[f64]>,
    ) -> Result<Triangulation<SiteMetric>, DelaunayError> {
        Triangulation::with_site_metric_order(points, weights, InsertionOrder::Hilbert)
    }

    /// As [`Triangulation::with_site_metric`] with an explicit insertion
    /// order.
    pub fn with_site_metric_order(
        points: &[Point],
        weights: Option<&[f64]>,
        order: InsertionOrder,
    ) -> Result<Triangulation<SiteMetric>, DelaunayError> {
        validate_points(points)?;
        let effective = match weights {
            None => None,
            Some(w) => {
                if w.len() != points.len() {
                    return Err(DelaunayError::WeightCountMismatch {
                        expected: points.len(),
                        got: w.len(),
                    });
                }
                if let Some(i) = w.iter().position(|x| !x.is_finite()) {
                    return Err(DelaunayError::NonFiniteWeight(i));
                }
                if weights_are_uniform(w) {
                    None
                } else {
                    Some(w)
                }
            }
        };
        match effective {
            None => Ok(Triangulation::from_parts(
                build_parts(points, order, None),
                SiteMetric::Euclidean,
            )),
            Some(w) => {
                let mut parts = build_parts(points, order, Some(w));
                let metric = SiteMetric::Power(PowerWeights::new(std::mem::take(&mut parts.cw)));
                Ok(Triangulation::from_parts(parts, metric))
            }
        }
    }
}

impl Triangulation<SiteMetric> {
    /// Explodes the built structure into flat POD arrays for snapshot
    /// storage. The inverse of [`Triangulation::from_flat`]: the round
    /// trip reconstructs a bit-identical structure (same canonical ids,
    /// same arena slot order, same free-list recycling order).
    pub fn to_flat(&self) -> crate::flat::TriangulationFlat {
        let weights = match &self.metric {
            SiteMetric::Euclidean => Vec::new(),
            SiteMetric::Power(pw) => pw.weights().to_vec(),
        };
        crate::flat::TriangulationFlat {
            pts: self.pts.clone(),
            canon: self.canon.clone(),
            members_off: self.members_off.clone(),
            members: self.members.clone(),
            mesh_tris: self.mesh.raw_tris(),
            mesh_free: self.mesh.free_slots().to_vec(),
            adj_off: self.adj_off.clone(),
            adj: self.adj.clone(),
            hull: self.hull.clone(),
            degenerate: self.degenerate,
            last_finite: self.last_finite,
            weights,
            hidden: self.hidden.clone(),
            anchor: self.anchor.clone(),
        }
    }

    /// Rebuilds a triangulation from its flat representation, validating
    /// the cross-array invariants (bounds, CSR monotonicity, arena
    /// free-list agreement) without re-running any geometry.
    ///
    /// Empty `weights` reconstructs the [`SiteMetric::Euclidean`]
    /// structure; otherwise one weight per canonical vertex rebuilds the
    /// power metric.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the first inconsistency. The
    /// checks are structural (index bounds, offsets, finiteness), not
    /// geometric — a snapshot's section checksum is what vouches for the
    /// payload bytes; this guards against a *consistent but wrong* file
    /// turning into out-of-bounds panics at query time.
    pub fn from_flat(
        flat: crate::flat::TriangulationFlat,
    ) -> Result<Triangulation<SiteMetric>, String> {
        let n = flat.pts.len();
        if n == 0 {
            return Err("empty vertex set".into());
        }
        let pts = flat.pts;
        if let Some(i) = pts.iter().position(|p| !p.is_finite()) {
            return Err(format!("vertex {i} has a non-finite coordinate"));
        }
        let nu = n as u32;
        if flat.canon.is_empty() || flat.canon.iter().any(|&c| c >= nu) {
            return Err("canonical map empty or out of bounds".into());
        }
        check_csr("members", &flat.members_off, &flat.members, n)?;
        if flat.members.len() != flat.canon.len()
            || flat.members.iter().any(|&i| i as usize >= flat.canon.len())
        {
            return Err("members CSR does not cover the input indices".into());
        }
        check_csr("adjacency", &flat.adj_off, &flat.adj, n)?;
        if flat.adj.iter().any(|&v| v >= nu) {
            return Err("adjacency entry out of bounds".into());
        }
        if flat.hull.iter().any(|&v| v >= nu) {
            return Err("hull vertex out of bounds".into());
        }
        if !flat.weights.is_empty() && flat.weights.len() != n {
            return Err(format!(
                "{} weights for {n} canonical vertices",
                flat.weights.len()
            ));
        }
        if let Some(i) = flat.weights.iter().position(|w| !w.is_finite()) {
            return Err(format!("weight {i} is not finite"));
        }
        // vaq-lint: allow(panic-hygiene) -- windows(2) yields exactly two elements
        if flat.hidden.windows(2).any(|w| w[0] >= w[1]) || flat.hidden.iter().any(|&v| v >= nu) {
            return Err("hidden list not strictly ascending in bounds".into());
        }
        if !flat.hidden.is_empty() && flat.weights.is_empty() {
            return Err("hidden sites on an unweighted structure".into());
        }
        if !flat.anchor.is_empty() && flat.anchor.len() != n {
            return Err("anchor table has wrong length".into());
        }
        if flat.anchor.iter().any(|&v| v >= nu) {
            return Err("anchor out of bounds".into());
        }
        if flat.hidden.is_empty() != flat.anchor.is_empty() {
            return Err("hidden list and anchor table must be empty together".into());
        }
        let mesh = Mesh::from_tris(flat.mesh_tris, flat.mesh_free)?;
        if flat.degenerate {
            if mesh.slots() != 0 || flat.last_finite != NONE {
                return Err("degenerate structure carries a mesh".into());
            }
        } else if flat.last_finite as usize >= mesh.slots()
            || mesh.is_dead(flat.last_finite)
            || mesh.tri(flat.last_finite).is_ghost()
        {
            return Err("walk hint is not a live finite triangle".into());
        }
        let metric = if flat.weights.is_empty() {
            SiteMetric::Euclidean
        } else {
            SiteMetric::Power(PowerWeights::new(flat.weights))
        };
        Ok(Triangulation::from_parts(
            Parts {
                pts,
                canon: flat.canon,
                members_off: flat.members_off,
                members: flat.members,
                mesh,
                adj_off: flat.adj_off,
                adj: flat.adj,
                hull: flat.hull,
                degenerate: flat.degenerate,
                last_finite: flat.last_finite,
                hidden: flat.hidden,
                anchor: flat.anchor,
                cw: Vec::new(),
            },
            metric,
        ))
    }
}

/// Validates one CSR pair: `off` has `rows + 1` monotone entries and the
/// last one equals the payload length.
fn check_csr(what: &str, off: &[u32], payload: &[u32], rows: usize) -> Result<(), String> {
    if off.len() != rows + 1 {
        return Err(format!(
            "{what} CSR has {} offsets for {rows} rows",
            off.len()
        ));
    }
    // vaq-lint: allow(panic-hygiene) -- off has rows + 1 >= 1 entries (checked above)
    if off[0] != 0 || off.windows(2).any(|w| w[0] > w[1]) {
        return Err(format!("{what} CSR offsets are not monotone from zero"));
    }
    if off[rows] as usize != payload.len() {
        return Err(format!(
            "{what} CSR covers {} entries but payload has {}",
            off[rows],
            payload.len()
        ));
    }
    Ok(())
}

/// Runs the incremental build and assembles all metric-independent state.
///
/// `weights` is `None` for Euclidean builds and `Some` only for genuinely
/// non-uniform weights (the constructors normalize uniform inputs away).
fn build_parts(points: &[Point], order: InsertionOrder, weights: Option<&[f64]>) -> Parts {
    let (pts, canon, members_off, members) = dedup(points);

    // Canonical weights: coincident inputs collapse to the max weight of
    // the group (a coincident lighter site is dominated everywhere by the
    // heavier one, so only the max can own the shared cell).
    let cw: Vec<f64> = match weights {
        None => Vec::new(),
        Some(w) => {
            let mut cw = vec![f64::NEG_INFINITY; pts.len()];
            for (i, &wi) in w.iter().enumerate() {
                let c = canon[i] as usize;
                if wi > cw[c] {
                    cw[c] = wi;
                }
            }
            cw
        }
    };

    // Choose the first triangle: the first two points of the insertion
    // order plus the first point not collinear with them. If none
    // exists the whole input is collinear → degenerate path mode.
    let ins_order: Vec<u32> = match order {
        InsertionOrder::Hilbert => hilbert_sort(&pts),
        InsertionOrder::Input => (0..pts.len() as u32).collect(),
    };
    let tri0 = match ins_order.as_slice() {
        // `ins_order` is a permutation of the canonical vertices, so
        // a non-empty `rest` is exactly the pts.len() >= 3 case.
        [i0, i1, rest @ ..] if !rest.is_empty() => {
            let (i0, i1) = (*i0, *i1);
            rest.iter()
                .copied()
                .find(|&i2| orient2d(pts[i0 as usize], pts[i1 as usize], pts[i2 as usize]) != 0.0)
                .map(|i2| (i0, i1, i2))
        }
        _ => None,
    };

    let Some((i0, i1, i2)) = tri0 else {
        return if cw.is_empty() {
            degenerate_path_parts(pts, canon, members_off, members)
        } else {
            weighted_collinear_parts(pts, canon, members_off, members, cw)
        };
    };

    // Orient the seed triangle CCW.
    let (i0, i1) = if orient2d(pts[i0 as usize], pts[i1 as usize], pts[i2 as usize]) < 0.0 {
        (i1, i0)
    } else {
        (i0, i1)
    };
    debug_assert!(orient2d(pts[i0 as usize], pts[i1 as usize], pts[i2 as usize]) > 0.0);

    let mut core = Core {
        mesh: Mesh::with_capacity(2 * pts.len() + 16),
        pts,
        w: cw,
        stamps: Vec::new(),
        epoch: 0,
        last_finite: 0,
        rng: 0x9E37_79B9_7F4A_7C15,
        stack: Vec::new(),
        bad: Vec::new(),
        boundary: Vec::new(),
        new_tris: Vec::new(),
    };

    // Seed triangle plus its three ghosts.
    let t = core.mesh.alloc([i0, i1, i2]);
    let g01 = core.mesh.alloc([i1, i0, GHOST]);
    let g12 = core.mesh.alloc([i2, i1, GHOST]);
    let g20 = core.mesh.alloc([i0, i2, GHOST]);
    core.mesh.link(t, 2, g01); // edge (i0,i1) ↔ ghost (i1,i0)
    core.mesh.link(t, 0, g12); // edge (i1,i2) ↔ ghost (i2,i1)
    core.mesh.link(t, 1, g20); // edge (i2,i0) ↔ ghost (i0,i2)
                               // Ghost-to-ghost links around the hull: ghosts share GHOST-incident
                               // edges. Ghost (i1,i0,G): edge (i0,G) is shared with ghost (i0,i2,G)
                               // whose edge (G,i0) matches reversed, etc.
    core.mesh.link(g01, 0, g20); // (i0,G) ↔ (G,i0)
    core.mesh.link(g01, 1, g12); // (G,i1) ↔ (i1,G)
    core.mesh.link(g12, 0, g01); // redundant with previous, harmless
    core.mesh.link(g12, 1, g20); // (G,i2) ↔ (i2,G)
    core.mesh.link(g20, 0, g12);
    core.mesh.link(g20, 1, g01);
    debug_assert_eq!(core.mesh.check_links(), Ok(()));
    core.last_finite = t;

    for &v in &ins_order {
        if v == i0 || v == i1 || v == i2 {
            continue;
        }
        let p = core.pts[v as usize];
        core.insert_in_cavity(v, p);
    }

    let (adj_off, adj) = build_adjacency(&core.mesh, core.pts.len());
    let hull = extract_hull(&core.mesh);

    // Hidden sites are exactly the vertices absent from the final mesh:
    // skipped at insertion, or inserted and later swallowed by a cavity.
    // Both leave an empty adjacency row. (Unweighted builds never hide a
    // vertex, so the scan is skipped and `hidden` stays empty.)
    let hidden: Vec<u32> = if core.w.is_empty() {
        Vec::new()
    } else {
        (0..core.pts.len() as u32)
            .filter(|&v| adj_off[v as usize] == adj_off[v as usize + 1])
            .collect()
    };
    let anchor = if hidden.is_empty() {
        Vec::new()
    } else {
        let mut anchor: Vec<u32> = (0..core.pts.len() as u32).collect();
        // vaq-lint: allow(panic-hygiene) -- hull[0] exists (non-degenerate
        // mode) and is live: a site whose projection is a hull vertex is
        // always a lower-hull vertex.
        let start = hull[0];
        for &h in &hidden {
            anchor[h as usize] = power_descent(
                &core.pts,
                &adj_off,
                &adj,
                &core.w,
                core.pts[h as usize],
                start,
            );
        }
        anchor
    };

    Parts {
        pts: core.pts,
        canon,
        members_off,
        members,
        mesh: core.mesh,
        adj_off,
        adj,
        hull,
        degenerate: false,
        last_finite: core.last_finite,
        hidden,
        anchor,
        cw: core.w,
    }
}

/// Greedy power-distance descent over the CSR adjacency from a **live**
/// start vertex; returns a live vertex of minimum power distance to `q`.
///
/// The power-diagram analogue of the nearest-vertex walk: a live site that
/// does not minimise the power distance to `q` always has a cell-adjacent
/// (hence graph-adjacent) live neighbour of strictly smaller power
/// distance, so the descent cannot stall, and the strictly decreasing key
/// guarantees termination.
fn power_descent(
    pts: &[Point],
    adj_off: &[u32],
    adj: &[u32],
    w: &[f64],
    q: Point,
    start: u32,
) -> u32 {
    let mut v = start;
    let mut dv = pts[v as usize].dist_sq(q) - w[v as usize];
    loop {
        let mut best = v;
        let mut bd = dv;
        let lo = adj_off[v as usize] as usize;
        let hi = adj_off[v as usize + 1] as usize;
        for &u in &adj[lo..hi] {
            let d = pts[u as usize].dist_sq(q) - w[u as usize];
            if d < bd {
                bd = d;
                best = u;
            }
        }
        if best == v {
            return v;
        }
        v = best;
        dv = bd;
    }
}

/// Builds the degenerate "triangulation" of an entirely collinear point
/// set: the Delaunay graph collapses to the path along the line, which
/// is exactly the Voronoi adjacency of collinear sites.
fn degenerate_path_parts(
    pts: Vec<Point>,
    canon: Vec<u32>,
    members_off: Vec<u32>,
    members: Vec<u32>,
) -> Parts {
    let mut order: Vec<u32> = (0..pts.len() as u32).collect();
    // Lexicographic order equals order along any line.
    order.sort_by(|&a, &b| pts[a as usize].cmp_lex(&pts[b as usize]));
    let n = pts.len();
    let mut adj_off = vec![0u32; n + 1];
    let mut adj = Vec::with_capacity(2 * n.saturating_sub(1));
    // Degree 2 inside the path, 1 at the ends (0 for a single point).
    let mut deg = vec![0u32; n];
    for (&a, &b) in order.iter().zip(order.iter().skip(1)) {
        deg[a as usize] += 1;
        deg[b as usize] += 1;
    }
    for v in 0..n {
        adj_off[v + 1] = adj_off[v] + deg[v];
    }
    adj.resize(adj_off[n] as usize, 0);
    let mut cursor: Vec<u32> = adj_off[..n].to_vec();
    for (&a, &b) in order.iter().zip(order.iter().skip(1)) {
        adj[cursor[a as usize] as usize] = b;
        cursor[a as usize] += 1;
        adj[cursor[b as usize] as usize] = a;
        cursor[b as usize] += 1;
    }
    for v in 0..n {
        adj[adj_off[v] as usize..adj_off[v + 1] as usize].sort_unstable();
    }
    Parts {
        pts,
        canon,
        members_off,
        members,
        mesh: Mesh::new(),
        adj_off,
        adj,
        hull: order,
        degenerate: true,
        last_finite: NONE,
        hidden: Vec::new(),
        anchor: Vec::new(),
        cw: Vec::new(),
    }
}

/// Builds the degenerate structure of entirely collinear **weighted**
/// sites: the 1-D power diagram along the line.
///
/// Restricted to a line, the power distance of site `i` at parameter `t`
/// is `(t − tᵢ)² − wᵢ`; a site owns a 1-D cell iff its lifted point
/// `(tᵢ, tᵢ² − wᵢ)` is a vertex of the **lower convex hull** of all
/// lifted points — the 1-D instance of the same lifting that defines the
/// regular triangulation. We use the scaled parameter `s = (p − o)·d`
/// (with `d` the direction between the lexicographic extremes) and lift
/// `z = s² − |d|²·w`; positive affine scalings of both axes preserve
/// lower-hull membership, so no square roots are needed. The hull scan
/// keeps strict turns only: a lifted point exactly *on* a hull edge owns
/// a zero-length cell and counts as hidden, matching the strict-conflict
/// convention of the 2-D build. `s` and `z` round like any float dot
/// product; the turn tests on the rounded lifts are exact (`orient2d`).
fn weighted_collinear_parts(
    pts: Vec<Point>,
    canon: Vec<u32>,
    members_off: Vec<u32>,
    members: Vec<u32>,
    cw: Vec<f64>,
) -> Parts {
    let n = pts.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    // Lexicographic order equals order along any line.
    order.sort_by(|&a, &b| pts[a as usize].cmp_lex(&pts[b as usize]));

    let live: Vec<u32> = if n == 1 {
        vec![0]
    } else {
        // vaq-lint: allow(panic-hygiene) -- this branch has n >= 2 (the
        // n == 1 case returned above), so `order` is non-empty.
        let o = pts[order[0] as usize];
        let d = pts[order[n - 1] as usize] - o;
        let dd = d.dot(d);
        let lifted: Vec<Point> = order
            .iter()
            .map(|&v| {
                let s = (pts[v as usize] - o).dot(d);
                Point::new(s, s * s - dd * cw[v as usize])
            })
            .collect();
        // Monotone-chain lower hull over the lifted points (already sorted
        // by s), strict turns only.
        let mut stack: Vec<usize> = Vec::new();
        for k in 0..n {
            // Exactly equal parameters can only arise from rounding of
            // distinct collinear points; keep the lower lift, which
            // dominates the other on the line.
            if let Some(&top) = stack.last() {
                if lifted[k].x == lifted[top].x {
                    if lifted[k].y >= lifted[top].y {
                        continue;
                    }
                    stack.pop();
                }
            }
            while stack.len() >= 2 {
                let a = lifted[stack[stack.len() - 2]];
                let b = lifted[stack[stack.len() - 1]];
                if orient2d(a, b, lifted[k]) <= 0.0 {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push(k);
        }
        stack.iter().map(|&k| order[k]).collect()
    };

    // Path adjacency over the live sites only.
    let mut is_live = vec![false; n];
    for &v in &live {
        is_live[v as usize] = true;
    }
    let mut deg = vec![0u32; n];
    for pair in live.windows(2) {
        // vaq-lint: allow(panic-hygiene) -- windows(2) yields exactly
        // two elements per slice.
        let (a, b) = (pair[0], pair[1]);
        deg[a as usize] += 1;
        deg[b as usize] += 1;
    }
    let mut adj_off = vec![0u32; n + 1];
    for v in 0..n {
        adj_off[v + 1] = adj_off[v] + deg[v];
    }
    let mut adj = vec![0u32; adj_off[n] as usize];
    let mut cursor: Vec<u32> = adj_off[..n].to_vec();
    for pair in live.windows(2) {
        // vaq-lint: allow(panic-hygiene) -- windows(2) yields exactly
        // two elements per slice.
        let (a, b) = (pair[0], pair[1]);
        adj[cursor[a as usize] as usize] = b;
        cursor[a as usize] += 1;
        adj[cursor[b as usize] as usize] = a;
        cursor[b as usize] += 1;
    }
    for v in 0..n {
        adj[adj_off[v] as usize..adj_off[v + 1] as usize].sort_unstable();
    }

    let hidden: Vec<u32> = (0..n as u32).filter(|&v| !is_live[v as usize]).collect();
    let anchor = if hidden.is_empty() {
        Vec::new()
    } else {
        let mut anchor: Vec<u32> = (0..n as u32).collect();
        for &h in &hidden {
            let q = pts[h as usize];
            // vaq-lint: allow(panic-hygiene) -- the lower hull of a
            // non-empty lifted set is non-empty, so `live` has a first
            // element.
            let mut best = live[0];
            let mut bd = pts[best as usize].dist_sq(q) - cw[best as usize];
            // vaq-lint: allow(panic-hygiene) -- `live` is non-empty, and
            // `[1..]` of a one-element slice is the empty slice, not a
            // panic.
            for &v in &live[1..] {
                let dv = pts[v as usize].dist_sq(q) - cw[v as usize];
                if dv < bd {
                    bd = dv;
                    best = v;
                }
            }
            anchor[h as usize] = best;
        }
        anchor
    };

    Parts {
        pts,
        canon,
        members_off,
        members,
        mesh: Mesh::new(),
        adj_off,
        adj,
        hull: live,
        degenerate: true,
        last_finite: NONE,
        hidden,
        anchor,
        cw,
    }
}

impl<M: DiagramMetric> Triangulation<M> {
    /// Assembles the public structure from build parts plus its metric.
    fn from_parts(parts: Parts, metric: M) -> Triangulation<M> {
        Triangulation {
            pts: parts.pts,
            canon: parts.canon,
            members_off: parts.members_off,
            members: parts.members,
            mesh: parts.mesh,
            adj_off: parts.adj_off,
            adj: parts.adj,
            hull: parts.hull,
            degenerate: parts.degenerate,
            last_finite: parts.last_finite,
            metric,
            hidden: parts.hidden,
            anchor: parts.anchor,
        }
    }

    /// The metric the triangulation was built under.
    #[inline]
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// Which diagram this triangulation realizes. Uniform-weight builds
    /// report [`DiagramKind::Euclidean`]: they are Euclidean builds.
    #[inline]
    pub fn diagram_kind(&self) -> DiagramKind {
        self.metric.kind()
    }

    /// The weight of canonical vertex `v` (`0.0` under a Euclidean metric).
    #[inline]
    pub fn weight(&self, v: u32) -> f64 {
        self.metric.weight(v)
    }

    /// The hidden canonical vertices (sorted ascending): weighted sites
    /// dominated everywhere, owning no cell, no mesh vertex and no
    /// neighbours. Always empty for Euclidean builds.
    #[inline]
    pub fn hidden_vertices(&self) -> &[u32] {
        &self.hidden
    }

    /// `true` when canonical vertex `v` owns no cell (see
    /// [`Triangulation::hidden_vertices`]).
    #[inline]
    pub fn is_hidden(&self, v: u32) -> bool {
        self.hidden.binary_search(&v).is_ok()
    }

    /// A live stand-in for vertex `v` in graph walks: `v` itself when
    /// live, a live vertex of minimum power distance to `v`'s location
    /// when hidden. Seeding a walk or a cell expansion at `anchor_of(v)`
    /// is always safe; seeding at a hidden `v` would stall immediately
    /// (no neighbours).
    #[inline]
    pub fn anchor_of(&self, v: u32) -> u32 {
        if self.anchor.is_empty() {
            v
        } else {
            self.anchor[v as usize]
        }
    }

    /// Number of canonical (unique) vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.pts.len()
    }

    /// Number of input points (before duplicate merging).
    #[inline]
    pub fn input_count(&self) -> usize {
        self.canon.len()
    }

    /// The coordinates of canonical vertex `v`.
    #[inline]
    pub fn point(&self, v: u32) -> Point {
        self.pts[v as usize]
    }

    /// All canonical vertex coordinates, indexed by vertex id.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.pts
    }

    /// The canonical vertex that input index `i` collapsed onto.
    #[inline]
    pub fn canonical(&self, i: usize) -> u32 {
        self.canon[i]
    }

    /// The input indices that collapsed onto canonical vertex `v`
    /// (always at least one).
    #[inline]
    pub fn inputs_of(&self, v: u32) -> &[u32] {
        let lo = self.members_off[v as usize] as usize;
        let hi = self.members_off[v as usize + 1] as usize;
        &self.members[lo..hi]
    }

    /// `true` when the input was entirely collinear (including 1 or 2
    /// points) and the structure is the degenerate path described in the
    /// module docs. There are no triangles in this mode, but adjacency,
    /// nearest-vertex walks and Voronoi cells all still work.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.degenerate
    }

    /// The Voronoi neighbours `VN(P, p)` of canonical vertex `v`, sorted
    /// ascending. This is the oracle at the heart of the paper's
    /// Algorithm 1.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.adj_off[v as usize] as usize;
        let hi = self.adj_off[v as usize + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Degree of canonical vertex `v` in the Delaunay graph.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }

    /// Total number of Delaunay edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.adj.len() / 2
    }

    /// Convex-hull vertices in CCW order (degenerate mode: path order).
    #[inline]
    pub fn hull(&self) -> &[u32] {
        &self.hull
    }

    /// Iterates over the finite triangles as CCW vertex triples.
    pub fn triangles(&self) -> impl Iterator<Item = [u32; 3]> + '_ {
        self.mesh
            .live_ids()
            .filter(move |&t| !self.mesh.tri(t).is_ghost())
            .map(move |t| self.mesh.tri(t).v)
    }

    /// Number of finite triangles.
    pub fn triangle_count(&self) -> usize {
        self.triangles().count()
    }

    /// Locates `p` in the triangulation. Returns [`Locate::Degenerate`] in
    /// degenerate path mode.
    pub fn locate(&self, p: Point) -> Locate {
        if self.degenerate {
            // The path has no faces; report coincident vertices at least.
            if let Some(v) = (0..self.pts.len() as u32).find(|&v| self.pts[v as usize] == p) {
                return Locate::Vertex(v);
            }
            return Locate::Degenerate;
        }
        // The walk needs mutable scratch (its RNG); clone a tiny shim.
        let mut rng = p.x.to_bits() ^ p.y.to_bits().rotate_left(32) | 1;
        let mut t = self.last_finite;
        let mut prev = NONE;
        let max_steps = 4 * self.mesh.slots() + 64;
        for _ in 0..max_steps {
            let tri = *self.mesh.tri(t);
            if tri.is_ghost() {
                let g = tri.ghost_slot().expect("is_ghost");
                for k in 1..3 {
                    let w = tri.v[(g + k) % 3];
                    if self.pts[w as usize] == p {
                        return Locate::Vertex(w);
                    }
                }
                return Locate::Outside(t);
            }
            let r = (next_rand(&mut rng) % 3) as usize;
            let mut next = NONE;
            for k in 0..3 {
                let i = (r + k) % 3;
                if tri.n[i] == prev {
                    continue;
                }
                let (a, b) = tri.edge(i);
                if orient2d(self.pts[a as usize], self.pts[b as usize], p) < 0.0 {
                    next = tri.n[i];
                    break;
                }
            }
            if next == NONE {
                for i in 0..3 {
                    if self.pts[tri.v[i] as usize] == p {
                        return Locate::Vertex(tri.v[i]);
                    }
                }
                return Locate::Face(t);
            }
            prev = t;
            t = next;
        }
        // vaq-lint: allow(panic-hygiene) -- same strictly-decreasing
        // walk argument as `Core::walk`: failure to terminate means a
        // corrupt mesh, not a caller error.
        unreachable!("point-location walk failed to terminate");
    }

    /// The canonical vertex nearest to `q` under the build metric —
    /// minimum squared distance for Euclidean builds, minimum power
    /// distance `|q − p|² − w` for weighted ones — found by greedy descent
    /// on the Delaunay/regular graph from `hint` (any vertex; defaults
    /// to 0).
    ///
    /// Correctness follows from the (power-)Voronoi property: a live
    /// vertex that does not minimise the metric distance to `q` always has
    /// a cell-adjacent (hence graph-adjacent) neighbour of strictly
    /// smaller metric distance, so the descent cannot get stuck at a
    /// non-answer; the key strictly decreases, so it terminates. Ties may
    /// return any of the tied vertices. A **hidden** `hint` (or hidden
    /// vertex 0) has no neighbours and would stall the walk at a cell-less
    /// site; it is first remapped to its live anchor. Hidden vertices are
    /// never returned: the result always owns the cell containing `q`.
    ///
    /// Under a Euclidean metric every weight is `0.0` and `d − 0.0 == d`
    /// bit-for-bit, so the descent visits exactly the vertices the
    /// unweighted code did.
    pub fn nearest_vertex(&self, q: Point, hint: Option<u32>) -> u32 {
        let mut v = hint.unwrap_or(0).min(self.pts.len() as u32 - 1);
        if !self.anchor.is_empty() {
            v = self.anchor[v as usize];
        }
        let mut dv = self.pts[v as usize].dist_sq(q) - self.metric.weight(v);
        loop {
            let mut best = v;
            let mut bd = dv;
            for &u in self.neighbors(v) {
                let d = self.pts[u as usize].dist_sq(q) - self.metric.weight(u);
                if d < bd {
                    bd = d;
                    best = u;
                }
            }
            if best == v {
                return v;
            }
            v = best;
            dv = bd;
        }
    }

    /// Verifies the local optimality property on every internal edge:
    /// empty circumcircle (Delaunay) for Euclidean builds, no power
    /// conflict (local regularity) for weighted ones. `O(triangles)`;
    /// intended for tests.
    pub fn is_delaunay(&self) -> bool {
        let weighted = self.metric.kind() == DiagramKind::Power;
        for t in self.mesh.live_ids() {
            let tri = self.mesh.tri(t);
            if tri.is_ghost() {
                continue;
            }
            let [a, b, c] = tri.v;
            let (pa, pb, pc) = (
                self.pts[a as usize],
                self.pts[b as usize],
                self.pts[c as usize],
            );
            for i in 0..3 {
                let nb = tri.n[i];
                let ntri = self.mesh.tri(nb);
                if ntri.is_ghost() {
                    continue;
                }
                let (ea, eb) = tri.edge(i);
                let j = ntri
                    .slot_of_edge(eb, ea)
                    .expect("neighbour shares reversed edge");
                let apex = ntri.v[j];
                let bad = if weighted {
                    power_incircle(
                        pa,
                        pb,
                        pc,
                        self.pts[apex as usize],
                        self.metric.weight(a),
                        self.metric.weight(b),
                        self.metric.weight(c),
                        self.metric.weight(apex),
                    ) > 0.0
                } else {
                    incircle(pa, pb, pc, self.pts[apex as usize]) > 0.0
                };
                if bad {
                    return false;
                }
            }
        }
        true
    }

    /// Structural self-check (mutual neighbour links). Test helper.
    pub fn check_structure(&self) -> Result<(), String> {
        if self.degenerate {
            return Ok(());
        }
        self.mesh.check_links()
    }
}

/// Merges exactly-coincident input points.
///
/// Returns `(unique_points, canon, members_off, members)` where `canon`
/// maps each input index to its canonical vertex (numbered in order of
/// first occurrence) and the CSR (`members_off`, `members`) maps each
/// canonical vertex back to its input indices (ascending).
fn dedup(points: &[Point]) -> (Vec<Point>, Vec<u32>, Vec<u32>, Vec<u32>) {
    let n = points.len();
    let mut sorted: Vec<u32> = (0..n as u32).collect();
    sorted.sort_by(|&a, &b| {
        points[a as usize]
            .cmp_lex(&points[b as usize])
            .then(a.cmp(&b))
    });
    // rep[i] = smallest input index with coordinates equal to points[i].
    let mut rep = vec![0u32; n];
    let mut run_start = 0;
    for k in 0..n {
        if k > 0 && points[sorted[k] as usize] != points[sorted[run_start] as usize] {
            run_start = k;
        }
        rep[sorted[k] as usize] = sorted[run_start];
    }
    // Canonical ids in order of first occurrence.
    let mut canon = vec![u32::MAX; n];
    let mut pts = Vec::new();
    for i in 0..n {
        if rep[i] == i as u32 {
            canon[i] = pts.len() as u32;
            pts.push(points[i]);
        }
    }
    for i in 0..n {
        canon[i] = canon[rep[i] as usize];
    }
    // Members CSR.
    let k = pts.len();
    let mut members_off = vec![0u32; k + 1];
    for i in 0..n {
        members_off[canon[i] as usize + 1] += 1;
    }
    for v in 0..k {
        members_off[v + 1] += members_off[v];
    }
    let mut members = vec![0u32; n];
    let mut cursor: Vec<u32> = members_off[..k].to_vec();
    for (i, &c) in canon.iter().enumerate() {
        members[cursor[c as usize] as usize] = i as u32;
        cursor[c as usize] += 1;
    }
    (pts, canon, members_off, members)
}

/// Builds the CSR Voronoi-neighbour adjacency from the closed mesh.
///
/// Every finite triangle contributes its three CCW directed edges; every
/// ghost contributes its single finite directed edge (the reversed hull
/// edge). Together these enumerate each undirected Delaunay edge exactly
/// once per direction, so no deduplication is needed.
fn build_adjacency(mesh: &Mesh, n: usize) -> (Vec<u32>, Vec<u32>) {
    let mut deg = vec![0u32; n];
    for t in mesh.live_ids() {
        let tri = mesh.tri(t);
        match tri.ghost_slot() {
            None => {
                for i in 0..3 {
                    deg[tri.v[i] as usize] += 1;
                }
            }
            Some(g) => deg[tri.v[(g + 1) % 3] as usize] += 1,
        }
    }
    let mut off = vec![0u32; n + 1];
    for v in 0..n {
        off[v + 1] = off[v] + deg[v];
    }
    let mut adj = vec![0u32; off[n] as usize];
    let mut cursor: Vec<u32> = off[..n].to_vec();
    let push = |src: u32, dst: u32, adj: &mut Vec<u32>, cursor: &mut Vec<u32>| {
        adj[cursor[src as usize] as usize] = dst;
        cursor[src as usize] += 1;
    };
    for t in mesh.live_ids() {
        let tri = mesh.tri(t);
        match tri.ghost_slot() {
            None => {
                for i in 0..3 {
                    push(tri.v[i], tri.v[(i + 1) % 3], &mut adj, &mut cursor);
                }
            }
            Some(g) => {
                let u = tri.v[(g + 1) % 3];
                let v = tri.v[(g + 2) % 3];
                push(u, v, &mut adj, &mut cursor);
            }
        }
    }
    for v in 0..n {
        adj[off[v] as usize..off[v + 1] as usize].sort_unstable();
    }
    (off, adj)
}

/// Extracts the CCW hull cycle from the ghost triangles.
fn extract_hull(mesh: &Mesh) -> Vec<u32> {
    // Each ghost's finite edge (u, v) is the reversed hull edge, i.e. the
    // hull contains v → u.
    let mut next: Vec<(u32, u32)> = Vec::new();
    for t in mesh.live_ids() {
        let tri = mesh.tri(t);
        if let Some(g) = tri.ghost_slot() {
            let u = tri.v[(g + 1) % 3];
            let v = tri.v[(g + 2) % 3];
            next.push((v, u));
        }
    }
    if next.is_empty() {
        return Vec::new();
    }
    next.sort_unstable();
    let start = next.iter().map(|&(v, _)| v).min().expect("non-empty");
    let mut hull = Vec::with_capacity(next.len());
    let mut cur = start;
    loop {
        hull.push(cur);
        let k = next
            .binary_search_by_key(&cur, |&(v, _)| v)
            .expect("hull cycle is closed");
        cur = next[k].1;
        if cur == start {
            break;
        }
        debug_assert!(hull.len() <= next.len(), "hull cycle corrupt");
    }
    hull
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use vaq_geom::convex_hull_indices;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| p(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    /// Brute-force nearest canonical vertex.
    fn brute_nn(pts: &[Point], q: Point) -> f64 {
        pts.iter()
            .map(|s| s.dist_sq(q))
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn empty_input_is_an_error() {
        let r = Triangulation::new(&[]);
        assert!(matches!(r, Err(DelaunayError::EmptyInput)));
    }

    #[test]
    fn non_finite_input_is_an_error() {
        let r = Triangulation::new(&[p(0.0, 0.0), p(f64::NAN, 1.0)]);
        assert!(matches!(r, Err(DelaunayError::NonFiniteCoordinate(1))));
    }

    #[test]
    fn single_point_is_degenerate_with_no_neighbors() {
        let t = Triangulation::new(&[p(3.0, 4.0)]).unwrap();
        assert!(t.is_degenerate());
        assert_eq!(t.vertex_count(), 1);
        assert_eq!(t.neighbors(0), &[] as &[u32]);
        assert_eq!(t.nearest_vertex(p(100.0, -5.0), None), 0);
    }

    #[test]
    fn two_points_form_a_path() {
        let t = Triangulation::new(&[p(0.0, 0.0), p(1.0, 0.0)]).unwrap();
        assert!(t.is_degenerate());
        assert_eq!(t.neighbors(0), &[1]);
        assert_eq!(t.neighbors(1), &[0]);
    }

    #[test]
    fn collinear_points_form_a_sorted_path() {
        // Input deliberately out of line order.
        let pts = vec![p(3.0, 3.0), p(0.0, 0.0), p(2.0, 2.0), p(1.0, 1.0)];
        let t = Triangulation::new(&pts).unwrap();
        assert!(t.is_degenerate());
        // Path order along the line: 1 (0,0) – 3 (1,1) – 2 (2,2) – 0 (3,3).
        assert_eq!(t.neighbors(1), &[3]);
        assert_eq!(t.neighbors(3), &[1, 2]);
        assert_eq!(t.neighbors(2), &[0, 3]);
        assert_eq!(t.neighbors(0), &[2]);
        assert_eq!(t.edge_count(), 3);
        assert_eq!(t.locate(p(0.5, 0.5)), Locate::Degenerate);
        assert_eq!(t.locate(p(1.0, 1.0)), Locate::Vertex(3));
    }

    #[test]
    fn triangle_of_three_points() {
        let t = Triangulation::new(&[p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0)]).unwrap();
        assert!(!t.is_degenerate());
        assert_eq!(t.triangle_count(), 1);
        assert_eq!(t.edge_count(), 3);
        assert_eq!(t.hull().len(), 3);
        assert!(t.is_delaunay());
        t.check_structure().unwrap();
        // Every vertex neighbours the other two.
        for v in 0..3 {
            assert_eq!(t.degree(v), 2);
        }
    }

    #[test]
    fn square_with_centre_point() {
        let pts = vec![
            p(0.0, 0.0),
            p(1.0, 0.0),
            p(1.0, 1.0),
            p(0.0, 1.0),
            p(0.5, 0.5),
        ];
        let t = Triangulation::new(&pts).unwrap();
        assert_eq!(t.triangle_count(), 4);
        assert!(t.is_delaunay());
        t.check_structure().unwrap();
        // The centre neighbours all four corners.
        assert_eq!(t.neighbors(4), &[0, 1, 2, 3]);
        assert_eq!(t.hull().len(), 4);
    }

    #[test]
    fn cocircular_grid_is_still_delaunay() {
        // A 5×5 integer grid: every unit square's four corners are
        // cocircular, exercising the incircle == 0 tie handling.
        let mut pts = Vec::new();
        for x in 0..5 {
            for y in 0..5 {
                pts.push(p(f64::from(x), f64::from(y)));
            }
        }
        let t = Triangulation::new(&pts).unwrap();
        assert!(!t.is_degenerate());
        assert!(t.is_delaunay());
        t.check_structure().unwrap();
        // Euler: V - E + F = 2, with F = triangles + outer face.
        let v = t.vertex_count() as i64;
        let e = t.edge_count() as i64;
        let f = t.triangle_count() as i64 + 1;
        assert_eq!(v - e + f, 2);
        // A triangulated 4×4-square grid has exactly 2·16 = 32 triangles.
        assert_eq!(t.triangle_count(), 32);
        assert_eq!(t.hull().len(), 16);
    }

    #[test]
    fn duplicates_are_merged_and_mapped() {
        let pts = vec![
            p(0.0, 0.0),
            p(1.0, 0.0),
            p(0.0, 0.0), // dup of 0
            p(0.0, 1.0),
            p(1.0, 0.0), // dup of 1
            p(0.0, 0.0), // dup of 0
        ];
        let t = Triangulation::new(&pts).unwrap();
        assert_eq!(t.vertex_count(), 3);
        assert_eq!(t.input_count(), 6);
        assert_eq!(t.canonical(0), 0);
        assert_eq!(t.canonical(2), 0);
        assert_eq!(t.canonical(5), 0);
        assert_eq!(t.canonical(1), 1);
        assert_eq!(t.canonical(4), 1);
        assert_eq!(t.canonical(3), 2);
        assert_eq!(t.inputs_of(0), &[0, 2, 5]);
        assert_eq!(t.inputs_of(1), &[1, 4]);
        assert_eq!(t.inputs_of(2), &[3]);
    }

    #[test]
    fn negative_zero_merges_with_positive_zero() {
        let pts = vec![p(-0.0, 0.0), p(0.0, -0.0), p(1.0, 1.0)];
        let t = Triangulation::new(&pts).unwrap();
        assert_eq!(t.vertex_count(), 2);
    }

    #[test]
    fn random_points_delaunay_and_euler() {
        for seed in 0..4 {
            let pts = uniform(400, seed);
            let t = Triangulation::new(&pts).unwrap();
            assert!(t.is_delaunay(), "seed {seed}");
            t.check_structure().unwrap();
            let v = t.vertex_count() as i64;
            let e = t.edge_count() as i64;
            let f = t.triangle_count() as i64 + 1;
            assert_eq!(v - e + f, 2, "Euler failed at seed {seed}");
            // With all vertices on or inside the hull:
            // E = 3V - 3 - H, T = 2V - 2 - H.
            let h = t.hull().len() as i64;
            assert_eq!(e, 3 * v - 3 - h);
            assert_eq!(t.triangle_count() as i64, 2 * v - 2 - h);
        }
    }

    #[test]
    fn hull_matches_monotone_chain() {
        let pts = uniform(300, 7);
        let t = Triangulation::new(&pts).unwrap();
        let expect = convex_hull_indices(&pts);
        let mut hull = t.hull().to_vec();
        // Same set of vertices (rotation/start may differ).
        let mut expect_sorted: Vec<u32> = expect.iter().map(|&i| i as u32).collect();
        expect_sorted.sort_unstable();
        hull.sort_unstable();
        assert_eq!(hull, expect_sorted);
    }

    #[test]
    fn insertion_orders_agree() {
        let pts = uniform(250, 99);
        let a = Triangulation::with_order(&pts, InsertionOrder::Hilbert).unwrap();
        let b = Triangulation::with_order(&pts, InsertionOrder::Input).unwrap();
        assert!(a.is_delaunay() && b.is_delaunay());
        // The Delaunay triangulation is unique for points in general
        // position, so the adjacency structures must be identical.
        for v in 0..pts.len() as u32 {
            assert_eq!(a.neighbors(v), b.neighbors(v), "vertex {v}");
        }
    }

    #[test]
    fn locate_classifies_inside_outside_vertex() {
        let pts = vec![p(0.0, 0.0), p(4.0, 0.0), p(0.0, 4.0), p(4.0, 4.0)];
        let t = Triangulation::new(&pts).unwrap();
        match t.locate(p(1.0, 1.0)) {
            Locate::Face(f) => {
                let tri = t.mesh.tri(f);
                assert!(!tri.is_ghost());
            }
            other => panic!("expected Face, got {other:?}"),
        }
        assert!(matches!(t.locate(p(10.0, 10.0)), Locate::Outside(_)));
        assert_eq!(t.locate(p(4.0, 0.0)), Locate::Vertex(1));
    }

    #[test]
    fn nearest_vertex_matches_brute_force() {
        let pts = uniform(500, 11);
        let t = Triangulation::new(&pts).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let q = p(rng.gen::<f64>() * 1.4 - 0.2, rng.gen::<f64>() * 1.4 - 0.2);
            let v = t.nearest_vertex(q, None);
            let got = t.point(v).dist_sq(q);
            let want = brute_nn(&pts, q);
            assert!(
                (got - want).abs() <= 1e-12 * (1.0 + want),
                "q={q}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn nearest_vertex_on_degenerate_path() {
        let pts: Vec<Point> = (0..10).map(|i| p(f64::from(i), 0.0)).collect();
        let t = Triangulation::new(&pts).unwrap();
        assert!(t.is_degenerate());
        assert_eq!(t.nearest_vertex(p(3.4, 5.0), None), 3);
        assert_eq!(t.nearest_vertex(p(8.6, -2.0), Some(0)), 9);
    }

    #[test]
    fn adjacency_is_symmetric_and_irreflexive() {
        let pts = uniform(300, 5);
        let t = Triangulation::new(&pts).unwrap();
        for v in 0..t.vertex_count() as u32 {
            for &u in t.neighbors(v) {
                assert_ne!(u, v, "self-loop at {v}");
                assert!(
                    t.neighbors(u).binary_search(&v).is_ok(),
                    "asymmetric edge {v}–{u}"
                );
            }
        }
    }

    #[test]
    fn points_on_hull_edges_and_repeated_builds() {
        // Points exactly on the seed triangle's edges (on-edge insertion).
        let pts = vec![
            p(0.0, 0.0),
            p(2.0, 0.0),
            p(0.0, 2.0),
            p(1.0, 0.0), // on hull edge
            p(0.0, 1.0), // on hull edge
            p(1.0, 1.0), // on hull edge (hypotenuse)
        ];
        let t = Triangulation::new(&pts).unwrap();
        assert!(t.is_delaunay());
        t.check_structure().unwrap();
        assert_eq!(t.hull().len(), 6, "all points lie on the hull");
    }

    /// Brute-force power-nearest live canonical vertex.
    fn brute_power_nn(t: &Triangulation<SiteMetric>, q: Point) -> f64 {
        (0..t.vertex_count() as u32)
            .filter(|&v| !t.is_hidden(v))
            .map(|v| t.point(v).dist_sq(q) - t.weight(v))
            .fold(f64::INFINITY, f64::min)
    }

    /// Weighted builds must agree with the Euclidean structure exactly
    /// when the weights are uniform (here: absent, all-zero, all-equal).
    #[test]
    fn uniform_weights_are_bit_identical_to_euclidean() {
        let pts = uniform(180, 21);
        let plain = Triangulation::new(&pts).unwrap();
        for weights in [
            None,
            Some(vec![0.0; pts.len()]),
            Some(vec![7.25; pts.len()]),
        ] {
            let w = Triangulation::with_site_metric(&pts, weights.as_deref()).unwrap();
            assert_eq!(w.diagram_kind(), DiagramKind::Euclidean);
            assert!(w.hidden_vertices().is_empty());
            assert_eq!(w.hull(), plain.hull());
            assert_eq!(w.triangle_count(), plain.triangle_count());
            for v in 0..pts.len() as u32 {
                assert_eq!(w.neighbors(v), plain.neighbors(v), "vertex {v}");
            }
            // The nearest-vertex walk visits the same vertices: d − 0.0
            // is bitwise d.
            let mut rng = StdRng::seed_from_u64(5);
            for _ in 0..50 {
                let q = p(rng.gen::<f64>() * 2.0 - 0.5, rng.gen::<f64>() * 2.0 - 0.5);
                assert_eq!(w.nearest_vertex(q, None), plain.nearest_vertex(q, None));
            }
        }
    }

    /// A heavy central site swallows every interior light site. (Sites on
    /// the convex hull can never be hidden — their lifted points are
    /// extreme — so "dominates all others" means all non-hull sites.)
    #[test]
    fn dominating_site_hides_all_interior_sites() {
        let mut pts = vec![p(0.0, 0.0), p(10.0, 0.0), p(10.0, 10.0), p(0.0, 10.0)];
        let mut w = vec![0.0, 0.0, 0.0, 0.0];
        pts.push(p(5.0, 5.0)); // the dominator
        w.push(1000.0);
        let interior = [p(3.0, 3.0), p(7.0, 6.0), p(4.0, 8.0), p(6.0, 2.0)];
        for q in interior {
            pts.push(q);
            w.push(0.0);
        }
        let t = Triangulation::with_site_metric(&pts, Some(&w)).unwrap();
        assert_eq!(t.diagram_kind(), DiagramKind::Power);
        assert!(t.is_delaunay(), "regularity");
        t.check_structure().unwrap();
        assert_eq!(t.hidden_vertices(), &[5, 6, 7, 8], "interior sites hide");
        for v in 0..5u32 {
            assert!(!t.is_hidden(v), "hull sites and the dominator are live");
            assert!(t.degree(v) > 0);
        }
        for &h in t.hidden_vertices() {
            assert_eq!(t.degree(h), 0, "hidden sites have no neighbours");
            assert!(!t.is_hidden(t.anchor_of(h)), "anchors are live");
        }
    }

    /// Regression for the greedy-walk stall: seeding `nearest_vertex` at a
    /// hidden (cell-less, neighbour-less) site must step to a live vertex
    /// instead of returning the dominated site itself.
    #[test]
    fn nearest_vertex_steps_off_hidden_sites() {
        let pts = vec![
            p(0.0, 0.0),
            p(10.0, 0.0),
            p(10.0, 10.0),
            p(0.0, 10.0),
            p(5.0, 5.0), // heavy dominator
            p(4.9, 5.1), // dominated site right next to it
        ];
        let w = vec![0.0, 0.0, 0.0, 0.0, 500.0, 0.0];
        let t = Triangulation::with_site_metric(&pts, Some(&w)).unwrap();
        assert_eq!(t.hidden_vertices(), &[5]);
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..60 {
            let q = p(rng.gen::<f64>() * 12.0 - 1.0, rng.gen::<f64>() * 12.0 - 1.0);
            // Hidden hint must neither stall nor be returned.
            let v = t.nearest_vertex(q, Some(5));
            assert!(!t.is_hidden(v));
            let got = t.point(v).dist_sq(q) - t.weight(v);
            let want = brute_power_nn(&t, q);
            assert!(
                (got - want).abs() <= 1e-9 * (1.0 + want.abs()),
                "q={q}: got {got}, want {want}"
            );
            // And the default hint agrees.
            assert_eq!(t.nearest_vertex(q, None), v);
        }
    }

    /// Coincident sites with distinct weights collapse onto one canonical
    /// vertex carrying the maximum weight of the group.
    #[test]
    fn duplicate_coordinates_take_max_weight() {
        let pts = vec![
            p(0.0, 0.0),
            p(4.0, 0.0),
            p(0.0, 4.0),
            p(1.0, 1.0),
            p(1.0, 1.0), // dup of 3
            p(1.0, 1.0), // dup of 3
        ];
        let w = vec![0.0, 0.0, 0.0, 2.0, 9.0, -3.0];
        let t = Triangulation::with_site_metric(&pts, Some(&w)).unwrap();
        assert_eq!(t.vertex_count(), 4);
        let v = t.canonical(4);
        assert_eq!(t.canonical(3), v);
        assert_eq!(t.weight(v), 9.0, "max weight of the coincident group");
        assert_eq!(t.inputs_of(v), &[3, 4, 5]);
        assert!(t.is_delaunay());
    }

    /// Collinear weighted sites: the 1-D lower envelope hides dominated
    /// interior sites; line-extreme sites are always live.
    #[test]
    fn weighted_collinear_lower_envelope() {
        // Light middle site between two plain ones: hidden.
        let pts = vec![p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0)];
        let t = Triangulation::with_site_metric(&pts, Some(&[0.0, -5.0, 0.0])).unwrap();
        assert!(t.is_degenerate());
        assert_eq!(t.hidden_vertices(), &[1]);
        assert_eq!(t.neighbors(0), &[2]);
        assert_eq!(t.neighbors(2), &[0]);
        assert_eq!(t.hull(), &[0, 2], "hull is the live path order");
        assert!(!t.is_hidden(t.anchor_of(1)));
        assert!(!t.is_hidden(t.nearest_vertex(p(1.0, 0.0), Some(1))));

        // Heavy middle site: everyone keeps a 1-D cell.
        let t = Triangulation::with_site_metric(&pts, Some(&[0.0, 5.0, 0.0])).unwrap();
        assert!(t.hidden_vertices().is_empty());
        assert_eq!(t.neighbors(1), &[0, 2]);

        // Heavy *end* site hides its lighter inner neighbour but never the
        // other extreme.
        let t = Triangulation::with_site_metric(&pts, Some(&[3.9, 0.0, 0.0])).unwrap();
        assert_eq!(t.hidden_vertices(), &[1]);
        assert!(!t.is_hidden(2), "line-extreme sites cannot hide");
    }

    #[test]
    fn weight_validation_errors() {
        let pts = vec![p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0)];
        assert!(matches!(
            Triangulation::with_site_metric(&pts, Some(&[1.0, 2.0])),
            Err(DelaunayError::WeightCountMismatch {
                expected: 3,
                got: 2
            })
        ));
        assert!(matches!(
            Triangulation::with_site_metric(&pts, Some(&[1.0, f64::NAN, 0.0])),
            Err(DelaunayError::NonFiniteWeight(1))
        ));
        assert!(matches!(
            Triangulation::with_site_metric(&[], None),
            Err(DelaunayError::EmptyInput)
        ));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        #[test]
        fn prop_delaunay_on_random_clouds(seed in 0u64..5000, n in 3usize..120) {
            let pts = uniform(n, seed);
            let t = Triangulation::new(&pts).unwrap();
            proptest::prop_assert!(t.is_delaunay());
            proptest::prop_assert!(t.check_structure().is_ok());
            let v = t.vertex_count() as i64;
            let e = t.edge_count() as i64;
            let f = t.triangle_count() as i64 + 1;
            proptest::prop_assert_eq!(v - e + f, 2);
        }

        #[test]
        fn prop_delaunay_on_snapped_grids(seed in 0u64..5000, n in 3usize..80) {
            // Snap coordinates to a coarse grid: many exact duplicates,
            // collinear runs and cocircular quadruples.
            let mut rng = StdRng::seed_from_u64(seed);
            let pts: Vec<Point> = (0..n)
                .map(|_| {
                    p(
                        f64::from(rng.gen_range(0..8i32)),
                        f64::from(rng.gen_range(0..8i32)),
                    )
                })
                .collect();
            let t = Triangulation::new(&pts).unwrap();
            proptest::prop_assert!(t.check_structure().is_ok());
            if !t.is_degenerate() {
                proptest::prop_assert!(t.is_delaunay());
            }
            // Every input index maps to a vertex with identical coordinates.
            for (i, q) in pts.iter().enumerate() {
                proptest::prop_assert_eq!(t.point(t.canonical(i)), *q);
            }
        }

        #[test]
        fn prop_weighted_regular_on_snapped_grids(seed in 0u64..5000, n in 3usize..60) {
            // Coarse-grid coordinates and integer weights: duplicates,
            // collinear runs, exact orthogonality ties — the degenerate
            // cases the exact predicate must decide.
            let mut rng = StdRng::seed_from_u64(seed);
            let pts: Vec<Point> = (0..n)
                .map(|_| {
                    p(
                        f64::from(rng.gen_range(0..8i32)),
                        f64::from(rng.gen_range(0..8i32)),
                    )
                })
                .collect();
            let w: Vec<f64> = (0..n).map(|_| f64::from(rng.gen_range(-16..17i32))).collect();
            let t = Triangulation::with_site_metric(&pts, Some(&w)).unwrap();
            proptest::prop_assert!(t.check_structure().is_ok());
            if !t.is_degenerate() {
                proptest::prop_assert!(t.is_delaunay(), "local regularity");
            }
            // Hidden ⟺ no neighbours; anchors are live.
            for v in 0..t.vertex_count() as u32 {
                proptest::prop_assert_eq!(t.is_hidden(v), t.degree(v) == 0 && t.vertex_count() > 1);
                proptest::prop_assert!(!t.is_hidden(t.anchor_of(v)));
            }
            // The greedy walk finds the power-nearest live site from any
            // hint, hidden hints included.
            if !t.is_degenerate() {
                for _ in 0..10 {
                    let q = p(rng.gen::<f64>() * 9.0 - 1.0, rng.gen::<f64>() * 9.0 - 1.0);
                    let hint = rng.gen_range(0..t.vertex_count() as u32);
                    let v = t.nearest_vertex(q, Some(hint));
                    proptest::prop_assert!(!t.is_hidden(v));
                    let got = t.point(v).dist_sq(q) - t.weight(v);
                    let want = brute_power_nn(&t, q);
                    proptest::prop_assert!((got - want).abs() <= 1e-9 * (1.0 + want.abs()));
                }
            }
        }

        #[test]
        fn prop_nearest_vertex_exact(seed in 0u64..2000) {
            let pts = uniform(60, seed);
            let t = Triangulation::new(&pts).unwrap();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
            for _ in 0..20 {
                let q = p(rng.gen::<f64>(), rng.gen::<f64>());
                let v = t.nearest_vertex(q, Some(rng.gen_range(0..60)));
                let got = t.point(v).dist_sq(q);
                let want = brute_nn(&pts, q);
                proptest::prop_assert!((got - want).abs() <= 1e-12 * (1.0 + want));
            }
        }
    }
}
