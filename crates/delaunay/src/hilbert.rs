//! Hilbert-curve ordering for spatially coherent insertion (BRIO-style).
//!
//! Inserting points into an incremental Delaunay triangulation in a random
//! order makes every point-location walk start far from its target. Sorting
//! the points along a Hilbert space-filling curve first makes consecutive
//! insertions spatially adjacent, so the remembering walk from the previous
//! insertion's triangle takes `O(1)` expected steps and the whole
//! construction becomes effectively linear after the sort.

use vaq_geom::{Point, Rect};

/// Grid resolution (bits per axis) used to discretise points onto the
/// Hilbert curve. 16 bits per axis gives 2³² curve positions, far more than
/// enough to order 10⁶ distinct points; ties are broken by input index
/// during the (stable) sort.
pub const HILBERT_ORDER: u32 = 16;

/// Maps grid cell `(x, y)` to its distance along the Hilbert curve of the
/// given `order` (grid side `2^order`).
///
/// This is the classic iterative conversion: at each scale the quadrant is
/// identified, its contribution added, and the coordinate frame rotated so
/// the recursion pattern repeats.
pub fn hilbert_index(order: u32, mut x: u32, mut y: u32) -> u64 {
    debug_assert!(order <= 31, "order {order} too large for u32 coordinates");
    let n: u32 = 1 << order;
    debug_assert!(x < n && y < n);
    let mut d: u64 = 0;
    let mut s = n >> 1;
    while s > 0 {
        let rx = u32::from(x & s > 0);
        let ry = u32::from(y & s > 0);
        d += (s as u64) * (s as u64) * u64::from((3 * rx) ^ ry);
        // Rotate the quadrant so the sub-curve is oriented canonically.
        if ry == 0 {
            if rx == 1 {
                x = s.wrapping_sub(1).wrapping_sub(x);
                y = s.wrapping_sub(1).wrapping_sub(y);
            }
            std::mem::swap(&mut x, &mut y);
        }
        s >>= 1;
    }
    d
}

/// Returns the indices of `points` sorted by Hilbert-curve position.
///
/// Points are snapped onto a `2^HILBERT_ORDER` grid spanning their bounding
/// box. Exactly coincident and grid-coincident points keep their input order
/// (the sort is stable), so the ordering is fully deterministic.
pub fn hilbert_sort(points: &[Point]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..points.len() as u32).collect();
    if points.len() < 2 {
        return order;
    }
    let bbox = Rect::from_points(points.iter().copied());
    let side = f64::from((1u32 << HILBERT_ORDER) - 1);
    let w = bbox.width();
    let h = bbox.height();
    let sx = if w > 0.0 { side / w } else { 0.0 };
    let sy = if h > 0.0 { side / h } else { 0.0 };
    let keys: Vec<u64> = points
        .iter()
        .map(|p| {
            let gx = ((p.x - bbox.min.x) * sx) as u32;
            let gy = ((p.y - bbox.min.y) * sy) as u32;
            hilbert_index(HILBERT_ORDER, gx.min(side as u32), gy.min(side as u32))
        })
        .collect();
    order.sort_by_key(|&i| keys[i as usize]);
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_order_curve_visits_quadrants_in_u_shape() {
        // Order-1 Hilbert curve over a 2×2 grid: (0,0) → (0,1) → (1,1) → (1,0).
        assert_eq!(hilbert_index(1, 0, 0), 0);
        assert_eq!(hilbert_index(1, 0, 1), 1);
        assert_eq!(hilbert_index(1, 1, 1), 2);
        assert_eq!(hilbert_index(1, 1, 0), 3);
    }

    #[test]
    fn index_is_a_bijection_on_small_grid() {
        let order = 4;
        let n = 1u32 << order;
        let mut seen = vec![false; (n * n) as usize];
        for x in 0..n {
            for y in 0..n {
                let d = hilbert_index(order, x, y) as usize;
                assert!(!seen[d], "duplicate index {d} at ({x},{y})");
                seen[d] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn consecutive_indices_are_grid_adjacent() {
        // The defining property of the Hilbert curve: successive cells share
        // an edge (Manhattan distance exactly 1).
        let order = 5;
        let n = 1u32 << order;
        let mut pos = vec![(0u32, 0u32); (n * n) as usize];
        for x in 0..n {
            for y in 0..n {
                pos[hilbert_index(order, x, y) as usize] = (x, y);
            }
        }
        for w in pos.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            let manhattan = x0.abs_diff(x1) + y0.abs_diff(y1);
            assert_eq!(manhattan, 1, "cells {w:?} not adjacent");
        }
    }

    #[test]
    fn sort_handles_tiny_and_degenerate_inputs() {
        assert_eq!(hilbert_sort(&[]), Vec::<u32>::new());
        assert_eq!(hilbert_sort(&[Point::new(3.0, 4.0)]), vec![0]);
        // All coincident: stable order preserved.
        let same = vec![Point::new(1.0, 1.0); 4];
        assert_eq!(hilbert_sort(&same), vec![0, 1, 2, 3]);
        // Zero-width bounding box (vertical line) must not divide by zero.
        let line: Vec<Point> = (0..5).map(|i| Point::new(2.0, f64::from(i))).collect();
        let order = hilbert_sort(&line);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sort_groups_nearby_points() {
        // Two tight clusters far apart: the sorted order must not interleave
        // them (each cluster's indices appear contiguously).
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(Point::new(0.001 * f64::from(i), 0.0)); // cluster A
        }
        for i in 0..10 {
            pts.push(Point::new(100.0 + 0.001 * f64::from(i), 100.0)); // cluster B
        }
        let order = hilbert_sort(&pts);
        let first_b = order.iter().position(|&i| i >= 10).unwrap();
        assert!(
            order[first_b..].iter().all(|&i| i >= 10),
            "clusters interleaved: {order:?}"
        );
    }
}
