//! The diagram-metric abstraction: which distance function the diagram
//! substrate is built under.
//!
//! The engine's expansion machinery (CSR neighbour oracle, greedy
//! nearest-vertex walk, cell clipping) is not intrinsically Euclidean —
//! it only needs a diagram whose cells are convex and line-bounded and a
//! dual triangulation to walk on. [`DiagramMetric`] captures exactly
//! that: a per-site weight and the diagram kind it induces.
//!
//! * [`Euclidean`] is a zero-sized type; a
//!   [`Triangulation<Euclidean>`](crate::Triangulation) compiles to
//!   exactly the unweighted code (every weight is the constant `0.0`,
//!   which folds out) and is the default type parameter, so existing
//!   code is untouched.
//! * [`PowerWeights`] holds one weight per canonical vertex and yields
//!   the **power diagram** (its dual is the regular triangulation).
//!   Weighted sites can be *hidden*: a site dominated everywhere owns no
//!   cell and no triangulation vertex.
//! * [`SiteMetric`] is the runtime sum of the two, for engines that pick
//!   the metric per dataset rather than per type.

/// Which diagram a triangulation realizes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DiagramKind {
    /// The classic Voronoi diagram / Delaunay triangulation.
    #[default]
    Euclidean,
    /// A power diagram / regular triangulation of weighted sites.
    Power,
}

/// A distance function over the canonical vertices of a triangulation.
///
/// The contract is small by design: the power distance from site `v` to
/// a location `x` is `|x − p_v|² − weight(v)`, and `kind()` says whether
/// any weight is actually in play. Implementations with
/// `kind() == DiagramKind::Euclidean` must return `0.0` from
/// [`weight`](DiagramMetric::weight) for every vertex — the builders rely
/// on this to keep the Euclidean path bit-identical.
pub trait DiagramMetric {
    /// The diagram kind this metric induces.
    fn kind(&self) -> DiagramKind;

    /// The weight of canonical vertex `v` (squared-distance units).
    fn weight(&self, v: u32) -> f64;
}

/// The unweighted metric: every site has weight zero.
///
/// A zero-sized type, so `Triangulation<Euclidean>` stores nothing and
/// every `weight()` call folds to the constant `0.0`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Euclidean;

impl DiagramMetric for Euclidean {
    #[inline]
    fn kind(&self) -> DiagramKind {
        DiagramKind::Euclidean
    }

    #[inline]
    fn weight(&self, _v: u32) -> f64 {
        0.0
    }
}

/// Per-canonical-vertex weights of a power diagram.
///
/// Held by a built triangulation, the weights are indexed by *canonical*
/// vertex id (post-duplicate-merge); coincident input sites collapse to
/// the maximum weight of their group, since a coincident site with a
/// smaller weight is dominated everywhere by the heavier one.
#[derive(Clone, Debug, PartialEq)]
pub struct PowerWeights {
    w: Vec<f64>,
}

impl PowerWeights {
    /// Wraps per-vertex weights. The caller is responsible for the
    /// indexing contract (one weight per canonical vertex).
    pub fn new(w: Vec<f64>) -> PowerWeights {
        PowerWeights { w }
    }

    /// The weights, indexed by canonical vertex id.
    pub fn weights(&self) -> &[f64] {
        &self.w
    }
}

impl DiagramMetric for PowerWeights {
    #[inline]
    fn kind(&self) -> DiagramKind {
        DiagramKind::Power
    }

    #[inline]
    fn weight(&self, v: u32) -> f64 {
        self.w[v as usize]
    }
}

/// A runtime-selected metric: Euclidean or power, decided per dataset.
///
/// This is what the area-query engine stores — whether a dataset carries
/// weights is a property of the input, not of the program. Uniform
/// weights (including none at all) normalize to the
/// [`SiteMetric::Euclidean`] variant at build time, so the weighted code
/// paths only ever see genuinely non-uniform weights.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum SiteMetric {
    /// No weights (or all weights equal — the diagram is the same).
    #[default]
    Euclidean,
    /// Genuinely non-uniform weights: a power diagram.
    Power(PowerWeights),
}

impl DiagramMetric for SiteMetric {
    #[inline]
    fn kind(&self) -> DiagramKind {
        match self {
            SiteMetric::Euclidean => DiagramKind::Euclidean,
            SiteMetric::Power(_) => DiagramKind::Power,
        }
    }

    #[inline]
    fn weight(&self, v: u32) -> f64 {
        match self {
            SiteMetric::Euclidean => 0.0,
            SiteMetric::Power(pw) => pw.weight(v),
        }
    }
}

/// `true` when every weight equals the first (vacuously true when empty).
///
/// A uniform weight vector shifts every power distance by the same
/// constant, so the diagram it induces **is** the Euclidean one; builders
/// use this to route uniform inputs through the unweighted path,
/// bit-identically.
pub fn weights_are_uniform(w: &[f64]) -> bool {
    w.split_first()
        .is_none_or(|(first, rest)| rest.iter().all(|x| x == first))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_is_zero_everywhere() {
        let m = Euclidean;
        assert_eq!(m.kind(), DiagramKind::Euclidean);
        assert_eq!(m.weight(0), 0.0);
        assert_eq!(m.weight(1_000_000), 0.0);
    }

    #[test]
    fn power_weights_index_by_vertex() {
        let m = PowerWeights::new(vec![1.0, -2.5, 0.0]);
        assert_eq!(m.kind(), DiagramKind::Power);
        assert_eq!(m.weight(0), 1.0);
        assert_eq!(m.weight(1), -2.5);
        assert_eq!(m.weights(), &[1.0, -2.5, 0.0]);
    }

    #[test]
    fn site_metric_dispatches() {
        let e = SiteMetric::Euclidean;
        assert_eq!(e.kind(), DiagramKind::Euclidean);
        assert_eq!(e.weight(7), 0.0);
        let p = SiteMetric::Power(PowerWeights::new(vec![4.0]));
        assert_eq!(p.kind(), DiagramKind::Power);
        assert_eq!(p.weight(0), 4.0);
        assert_eq!(SiteMetric::default(), SiteMetric::Euclidean);
    }

    #[test]
    fn uniformity_check() {
        assert!(weights_are_uniform(&[]));
        assert!(weights_are_uniform(&[3.0]));
        assert!(weights_are_uniform(&[2.0, 2.0, 2.0]));
        assert!(!weights_are_uniform(&[2.0, 2.0, 2.1]));
        // NaN is never equal to itself: non-uniform (builders reject NaN
        // before this is ever consulted).
        assert!(!weights_are_uniform(&[f64::NAN, f64::NAN]));
    }
}
