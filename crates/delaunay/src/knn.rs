//! k-nearest-neighbour search on the Delaunay graph.
//!
//! This is the VoR-tree kNN technique (Sharifzadeh & Shahabi, VLDB 2010 —
//! reference \[8\] of the reproduced paper) without the R-tree wrapping:
//! find the nearest site by greedy descent, then grow the answer set
//! best-first over Voronoi neighbours. Correctness rests on the classical
//! property that the *(i+1)*-th nearest site to a query point is a Voronoi
//! neighbour of one of the *i* nearest sites, so the frontier of the
//! explored region always contains the next answer.

use crate::triangulation::Triangulation;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use vaq_geom::Point;

/// Min-heap item: canonical vertex keyed by squared distance to the query.
struct Frontier {
    dist_sq: f64,
    v: u32,
}

impl PartialEq for Frontier {
    fn eq(&self, other: &Self) -> bool {
        self.dist_sq == other.dist_sq
    }
}
impl Eq for Frontier {}
impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        other.dist_sq.total_cmp(&self.dist_sq) // reversed: min-heap
    }
}

impl Triangulation {
    /// The `k` canonical vertices nearest to `q`, closest first, as
    /// `(vertex, squared distance)` pairs. Returns fewer when the
    /// triangulation has fewer vertices. Ties at the k-th distance are
    /// broken arbitrarily.
    ///
    /// Runs in `O(k · d̄ · log k)` after the initial greedy descent, where
    /// `d̄ ≈ 6` is the average Delaunay degree — no spatial index needed.
    pub fn k_nearest_vertices(&self, q: Point, k: usize) -> Vec<(u32, f64)> {
        let mut out = Vec::with_capacity(k.min(self.vertex_count()));
        if k == 0 || self.vertex_count() == 0 {
            return out;
        }
        let start = self.nearest_vertex(q, None);
        let mut visited = vec![false; self.vertex_count()];
        let mut heap = BinaryHeap::new();
        visited[start as usize] = true;
        heap.push(Frontier {
            dist_sq: self.point(start).dist_sq(q),
            v: start,
        });
        while let Some(Frontier { dist_sq, v }) = heap.pop() {
            out.push((v, dist_sq));
            if out.len() == k {
                break;
            }
            for &u in self.neighbors(v) {
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    heap.push(Frontier {
                        dist_sq: self.point(u).dist_sq(q),
                        v: u,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| p(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn brute_knn_dists(pts: &[Point], q: Point, k: usize) -> Vec<f64> {
        let mut d: Vec<f64> = pts.iter().map(|s| s.dist_sq(q)).collect();
        d.sort_by(f64::total_cmp);
        d.truncate(k);
        d
    }

    #[test]
    fn knn_matches_brute_force() {
        let pts = uniform(400, 61);
        let tri = Triangulation::new(&pts).unwrap();
        let mut rng = StdRng::seed_from_u64(62);
        for _ in 0..100 {
            let q = p(rng.gen::<f64>() * 1.2 - 0.1, rng.gen::<f64>() * 1.2 - 0.1);
            let k = rng.gen_range(1..30usize);
            let got: Vec<f64> = tri
                .k_nearest_vertices(q, k)
                .iter()
                .map(|&(_, d)| d)
                .collect();
            assert_eq!(got, brute_knn_dists(&pts, q, k), "q={q} k={k}");
        }
    }

    #[test]
    fn knn_is_sorted_and_respects_k() {
        let pts = uniform(100, 63);
        let tri = Triangulation::new(&pts).unwrap();
        let got = tri.k_nearest_vertices(p(0.5, 0.5), 20);
        assert_eq!(got.len(), 20);
        assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!(tri.k_nearest_vertices(p(0.5, 0.5), 0).is_empty());
        assert_eq!(tri.k_nearest_vertices(p(0.5, 0.5), 1000).len(), 100);
    }

    #[test]
    fn knn_on_degenerate_path() {
        let pts: Vec<Point> = (0..20).map(|i| p(f64::from(i), 0.0)).collect();
        let tri = Triangulation::new(&pts).unwrap();
        assert!(tri.is_degenerate());
        let got: Vec<u32> = tri
            .k_nearest_vertices(p(7.2, 0.0), 4)
            .iter()
            .map(|&(v, _)| v)
            .collect();
        assert_eq!(got, vec![7, 8, 6, 9]);
    }

    #[test]
    fn knn_with_duplicates_counts_canonical_vertices() {
        let pts = vec![p(0.0, 0.0), p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0)];
        let tri = Triangulation::new(&pts).unwrap();
        // Three canonical vertices only.
        let got = tri.k_nearest_vertices(p(0.1, 0.1), 10);
        assert_eq!(got.len(), 3);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        #[test]
        fn prop_knn_matches_brute(seed in 0u64..3000, n in 1usize..150, k in 1usize..20) {
            let pts = uniform(n, seed);
            let tri = Triangulation::new(&pts).unwrap();
            let mut rng = StdRng::seed_from_u64(seed ^ 0x4B4E4E);
            let q = p(rng.gen::<f64>(), rng.gen::<f64>());
            let got: Vec<f64> = tri.k_nearest_vertices(q, k).iter().map(|&(_, d)| d).collect();
            proptest::prop_assert_eq!(got, brute_knn_dists(&pts, q, k.min(n)));
        }
    }
}
