//! Proximity graphs derived from the Delaunay triangulation.
//!
//! Two classics that every Delaunay library is expected to export, both
//! subgraphs of the triangulation (so they cost `O(n α(n))` and `O(n)`
//! respectively once the triangulation exists):
//!
//! * the **Euclidean minimum spanning tree** — the EMST of a point set is
//!   a subgraph of its Delaunay triangulation, so Kruskal over the `O(n)`
//!   Delaunay edges replaces the naive `O(n²)` edge set;
//! * the **Gabriel graph** — the edges whose diametral circle contains no
//!   other site; a Delaunay edge `(u, v)` is Gabriel iff no *Voronoi
//!   neighbour* of `u` or `v` lies strictly inside the diametral circle
//!   (checking the two cells' neighbourhoods suffices because the nearest
//!   site to the circle's centre is a neighbour of whichever of `u`, `v`
//!   owns that centre's cell).
//!
//! Both respect the degenerate collinear mode: the path edges are exactly
//! the EMST there, and the Gabriel test still applies.

use crate::triangulation::Triangulation;

/// Disjoint-set forest with path halving and union by size.
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        true
    }
}

impl Triangulation {
    /// Every undirected Delaunay edge as a `(u, v)` pair with `u < v`.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.edge_count());
        for v in 0..self.vertex_count() as u32 {
            for &u in self.neighbors(v) {
                if v < u {
                    out.push((v, u));
                }
            }
        }
        out
    }

    /// The Euclidean minimum spanning tree over the canonical vertices, as
    /// `(u, v)` edges with `u < v`. Exactly `vertex_count() − 1` edges
    /// (the Delaunay graph is connected). Ties between equal-length edges
    /// are broken by vertex ids, making the output deterministic.
    pub fn euclidean_mst(&self) -> Vec<(u32, u32)> {
        let mut edges = self.edges();
        edges.sort_by(|&(a1, b1), &(a2, b2)| {
            let d1 = self.point(a1).dist_sq(self.point(b1));
            let d2 = self.point(a2).dist_sq(self.point(b2));
            d1.total_cmp(&d2).then(a1.cmp(&a2)).then(b1.cmp(&b2))
        });
        let mut uf = UnionFind::new(self.vertex_count());
        let mut mst = Vec::with_capacity(self.vertex_count().saturating_sub(1));
        for (u, v) in edges {
            if uf.union(u, v) {
                mst.push((u, v));
                if mst.len() + 1 == self.vertex_count() {
                    break;
                }
            }
        }
        mst
    }

    /// The Gabriel graph: Delaunay edges whose open diametral disk is
    /// empty of other sites. Returned as `(u, v)` pairs with `u < v`.
    pub fn gabriel_graph(&self) -> Vec<(u32, u32)> {
        self.edges()
            .into_iter()
            .filter(|&(u, v)| self.is_gabriel_edge(u, v))
            .collect()
    }

    /// `true` when the open diametral disk of edge `(u, v)` contains no
    /// other site. Only the Voronoi neighbours of `u` and `v` need
    /// checking: the disk's centre is the edge midpoint, whose nearest
    /// site other than `u`/`v` is a Voronoi neighbour of one of them.
    fn is_gabriel_edge(&self, u: u32, v: u32) -> bool {
        let pu = self.point(u);
        let pv = self.point(v);
        let centre = pu.midpoint(pv);
        let radius_sq = centre.dist_sq(pu);
        let blocked = |w: &u32| {
            let w = *w;
            w != u && w != v && self.point(w).dist_sq(centre) < radius_sq
        };
        !self.neighbors(u).iter().any(blocked) && !self.neighbors(v).iter().any(blocked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use vaq_geom::Point;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| p(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    /// Naive O(n²) Prim MST weight for cross-checking.
    fn brute_mst_weight(pts: &[Point]) -> f64 {
        let n = pts.len();
        let mut in_tree = vec![false; n];
        let mut best = vec![f64::INFINITY; n];
        best[0] = 0.0;
        let mut total = 0.0;
        for _ in 0..n {
            let (v, d) = best
                .iter()
                .enumerate()
                .filter(|(i, _)| !in_tree[*i])
                .map(|(i, &d)| (i, d))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("a vertex remains");
            in_tree[v] = true;
            total += d.sqrt();
            for w in 0..n {
                if !in_tree[w] {
                    best[w] = best[w].min(pts[v].dist_sq(pts[w]));
                }
            }
        }
        total
    }

    #[test]
    fn mst_weight_matches_brute_force() {
        for seed in 0..5u64 {
            let pts = uniform(120, seed);
            let tri = Triangulation::new(&pts).unwrap();
            let mst = tri.euclidean_mst();
            assert_eq!(mst.len(), pts.len() - 1);
            let weight: f64 = mst
                .iter()
                .map(|&(u, v)| tri.point(u).dist(tri.point(v)))
                .sum();
            let want = brute_mst_weight(&pts);
            assert!(
                (weight - want).abs() < 1e-9 * want.max(1.0),
                "seed {seed}: {weight} vs {want}"
            );
        }
    }

    #[test]
    fn mst_spans_without_cycles() {
        let pts = uniform(200, 9);
        let tri = Triangulation::new(&pts).unwrap();
        let mst = tri.euclidean_mst();
        let mut uf = UnionFind::new(pts.len());
        for &(u, v) in &mst {
            assert!(uf.union(u, v), "cycle through edge ({u},{v})");
        }
        let root = uf.find(0);
        assert!(
            (1..pts.len() as u32).all(|v| uf.find(v) == root),
            "MST does not span"
        );
    }

    #[test]
    fn gabriel_is_between_mst_and_delaunay() {
        // Classic sandwich: EMST ⊆ Gabriel ⊆ Delaunay.
        let pts = uniform(150, 11);
        let tri = Triangulation::new(&pts).unwrap();
        let gabriel: std::collections::HashSet<(u32, u32)> =
            tri.gabriel_graph().into_iter().collect();
        let delaunay: std::collections::HashSet<(u32, u32)> = tri.edges().into_iter().collect();
        assert!(gabriel.is_subset(&delaunay));
        for (u, v) in tri.euclidean_mst() {
            let key = if u < v { (u, v) } else { (v, u) };
            assert!(gabriel.contains(&key), "MST edge ({u},{v}) not Gabriel");
        }
        // On random data the Gabriel graph is a proper subgraph.
        assert!(gabriel.len() < delaunay.len());
    }

    #[test]
    fn gabriel_matches_brute_force_definition() {
        let pts = uniform(80, 13);
        let tri = Triangulation::new(&pts).unwrap();
        let got: std::collections::HashSet<(u32, u32)> = tri.gabriel_graph().into_iter().collect();
        for (u, v) in tri.edges() {
            let centre = pts[u as usize].midpoint(pts[v as usize]);
            let r_sq = centre.dist_sq(pts[u as usize]);
            let empty = (0..pts.len() as u32)
                .filter(|&w| w != u && w != v)
                .all(|w| pts[w as usize].dist_sq(centre) >= r_sq);
            assert_eq!(got.contains(&(u, v)), empty, "edge ({u},{v})");
        }
    }

    #[test]
    fn collinear_mode_mst_is_the_path() {
        let pts: Vec<Point> = (0..10).map(|i| p(f64::from(i), 2.0)).collect();
        let tri = Triangulation::new(&pts).unwrap();
        let mut mst = tri.euclidean_mst();
        mst.sort_unstable();
        let want: Vec<(u32, u32)> = (0..9).map(|i| (i, i + 1)).collect();
        assert_eq!(mst, want);
        // Every path edge is Gabriel on a line.
        assert_eq!(tri.gabriel_graph().len(), 9);
    }

    #[test]
    fn single_and_two_point_graphs() {
        let tri = Triangulation::new(&[p(0.0, 0.0)]).unwrap();
        assert!(tri.euclidean_mst().is_empty());
        assert!(tri.gabriel_graph().is_empty());
        let tri = Triangulation::new(&[p(0.0, 0.0), p(1.0, 0.0)]).unwrap();
        assert_eq!(tri.euclidean_mst(), vec![(0, 1)]);
        assert_eq!(tri.gabriel_graph(), vec![(0, 1)]);
    }
}
