//! Voronoi diagram extraction from the Delaunay triangulation.
//!
//! Cells are computed by **half-plane clipping**: the cell of vertex `v`
//! is the intersection of a clipping window with the half-planes
//! `closer-to-v-than-u` over all Delaunay neighbours `u` of `v`. This is
//! `O(deg²)` per cell (degree averages six), completely avoids the
//! circumcenter-ordering and unbounded-ray bookkeeping of the dual
//! construction, and — because only the *neighbours* of `v` contribute
//! bisectors — it is exactly the Voronoi cell of `v` clipped to the window
//! (a site's cell is determined by its Voronoi neighbours alone).
//!
//! It also works verbatim in the degenerate collinear mode, where cells are
//! slabs between successive bisectors along the line.
//!
//! Under a weighted ([`DiagramMetric`]) build the same scheme yields
//! **power cells**: each neighbour contributes its *radical-axis*
//! half-plane instead of the perpendicular bisector
//! ([`vaq_geom::clip_power_bisector`], which delegates to the plain
//! bisector when the two weights are equal — so Euclidean builds are
//! bit-identical), and hidden sites get empty cells without any clipping.

use crate::metric::DiagramMetric;
use crate::triangulation::Triangulation;
use vaq_geom::{clip_power_bisector, Point, Polygon, Rect};

/// The Voronoi cell of one generator, clipped to a window.
#[derive(Clone, Debug)]
pub struct VoronoiCell {
    /// Canonical vertex id of the generator site.
    pub generator: u32,
    /// The clipped cell as a CCW polygon; empty when the generator's cell
    /// does not meet the window (possible when the window is smaller than
    /// the point set's extent).
    pub polygon: Vec<Point>,
    /// `true` when the *unclipped* cell is unbounded (its generator is a
    /// hull vertex of the triangulation).
    pub unbounded: bool,
}

impl VoronoiCell {
    /// The clipped cell as a [`Polygon`], if it is non-degenerate.
    pub fn to_polygon(&self) -> Option<Polygon> {
        Polygon::new(self.polygon.clone()).ok()
    }

    /// Area of the clipped cell.
    pub fn area(&self) -> f64 {
        if self.polygon.len() < 3 {
            return 0.0;
        }
        Polygon::new_unchecked(self.polygon.clone()).area()
    }
}

/// A complete Voronoi diagram clipped to a bounding window.
#[derive(Clone, Debug)]
pub struct VoronoiDiagram {
    /// One cell per canonical vertex, indexed by vertex id.
    pub cells: Vec<VoronoiCell>,
    /// The clipping window.
    pub window: Rect,
}

impl VoronoiDiagram {
    /// Extracts every cell of the triangulation, clipped to `window`.
    ///
    /// The window should contain all generators (e.g.
    /// `Rect::from_points(..).expand(margin)`); cells of hull vertices are
    /// truncated at the window boundary. Hidden sites of a weighted build
    /// get empty cells (and are never unbounded: hull sites cannot hide).
    pub fn new<M: DiagramMetric>(tri: &Triangulation<M>, window: Rect) -> VoronoiDiagram {
        let mut hull_mark = vec![false; tri.vertex_count()];
        for &h in tri.hull() {
            hull_mark[h as usize] = true;
        }
        let cells = (0..tri.vertex_count() as u32)
            .map(|v| VoronoiCell {
                generator: v,
                polygon: cell_polygon(tri, v, &window),
                unbounded: hull_mark[v as usize],
            })
            .collect();
        VoronoiDiagram { cells, window }
    }

    /// The cell of canonical vertex `v`.
    #[inline]
    pub fn cell(&self, v: u32) -> &VoronoiCell {
        &self.cells[v as usize]
    }

    /// Sum of all clipped cell areas. When the window contains all
    /// generators this equals the window area (cells tile the window), a
    /// property the tests rely on.
    pub fn total_area(&self) -> f64 {
        self.cells.iter().map(VoronoiCell::area).sum()
    }
}

/// Computes the Voronoi (or power) cell of canonical vertex `v` clipped
/// to `window`, as a CCW vertex ring (possibly empty).
///
/// This is the on-demand primitive used by the area-query engine's
/// cell-expansion policy, which needs a handful of boundary cells rather
/// than the whole diagram. A cell is bounded by one half-plane per graph
/// neighbour: the perpendicular bisector under the Euclidean metric, the
/// radical axis under a power metric (the single code path below covers
/// both, since [`clip_power_bisector`] with equal weights *is* the
/// bisector). A hidden vertex owns no region and yields an empty ring.
pub fn cell_polygon<M: DiagramMetric>(tri: &Triangulation<M>, v: u32, window: &Rect) -> Vec<Point> {
    if tri.is_hidden(v) {
        return Vec::new();
    }
    let p = tri.point(v);
    let wp = tri.weight(v);
    let mut poly: Vec<Point> = window.corners().to_vec();
    for &u in tri.neighbors(v) {
        if poly.is_empty() {
            break;
        }
        poly = clip_power_bisector(&poly, p, wp, tri.point(u), tri.weight(u));
    }
    poly
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| p(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn unit_window() -> Rect {
        Rect::new(p(0.0, 0.0), p(1.0, 1.0))
    }

    #[test]
    fn two_point_cells_are_half_windows() {
        let tri = Triangulation::new(&[p(0.25, 0.5), p(0.75, 0.5)]).unwrap();
        let vd = VoronoiDiagram::new(&tri, unit_window());
        assert_eq!(vd.cells.len(), 2);
        // Bisector x = 0.5 splits the unit square in half.
        assert!((vd.cell(0).area() - 0.5).abs() < 1e-12);
        assert!((vd.cell(1).area() - 0.5).abs() < 1e-12);
        // Each half contains its generator.
        let c0 = Polygon::new(vd.cell(0).polygon.clone()).unwrap();
        assert!(c0.contains(p(0.25, 0.5)));
        assert!(!c0.contains_strict(p(0.75, 0.5)));
    }

    #[test]
    fn cells_tile_the_window() {
        let pts = uniform(120, 3);
        let tri = Triangulation::new(&pts).unwrap();
        let vd = VoronoiDiagram::new(&tri, unit_window());
        let total: f64 = vd.total_area();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "cells must tile the window, got total area {total}"
        );
    }

    #[test]
    fn every_cell_contains_its_generator() {
        let pts = uniform(80, 9);
        let tri = Triangulation::new(&pts).unwrap();
        let vd = VoronoiDiagram::new(&tri, unit_window());
        for cell in &vd.cells {
            let poly = Polygon::new(cell.polygon.clone()).unwrap();
            assert!(
                poly.contains(tri.point(cell.generator)),
                "cell of {} does not contain its generator",
                cell.generator
            );
        }
    }

    #[test]
    fn generator_is_nearest_site_for_cell_interior() {
        // Property 3 of the paper: q ∈ V(P, p) ⇔ p is the nearest site to q.
        let pts = uniform(60, 17);
        let tri = Triangulation::new(&pts).unwrap();
        let vd = VoronoiDiagram::new(&tri, unit_window());
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..300 {
            let q = p(rng.gen::<f64>(), rng.gen::<f64>());
            // Nearest site by brute force.
            let (best, _) = pts
                .iter()
                .enumerate()
                .map(|(i, s)| (i, s.dist_sq(q)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            let cell = Polygon::new(vd.cell(best as u32).polygon.clone()).unwrap();
            assert!(
                cell.contains(q),
                "q={q} not in the cell of its nearest site {best}"
            );
        }
    }

    #[test]
    fn hull_cells_marked_unbounded() {
        let pts = vec![p(0.2, 0.2), p(0.8, 0.2), p(0.5, 0.8), p(0.5, 0.4)];
        let tri = Triangulation::new(&pts).unwrap();
        let vd = VoronoiDiagram::new(&tri, unit_window());
        assert!(vd.cell(0).unbounded);
        assert!(vd.cell(1).unbounded);
        assert!(vd.cell(2).unbounded);
        assert!(!vd.cell(3).unbounded, "interior vertex cell is bounded");
    }

    #[test]
    fn collinear_sites_get_slab_cells() {
        let pts: Vec<Point> = (0..5).map(|i| p(0.1 + 0.2 * f64::from(i), 0.5)).collect();
        let tri = Triangulation::new(&pts).unwrap();
        assert!(tri.is_degenerate());
        let vd = VoronoiDiagram::new(&tri, unit_window());
        // Interior site cells are 0.2-wide vertical slabs of height 1.
        for v in 1..4u32 {
            assert!(
                (vd.cell(v).area() - 0.2).abs() < 1e-12,
                "slab {v} area {}",
                vd.cell(v).area()
            );
        }
        // End cells absorb the window margin: 0.1 + 0.1 = 0.2 wide.
        assert!((vd.cell(0).area() - 0.2).abs() < 1e-12);
        assert!((vd.total_area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_point_cell_is_whole_window() {
        let tri = Triangulation::new(&[p(0.4, 0.6)]).unwrap();
        let vd = VoronoiDiagram::new(&tri, unit_window());
        assert!((vd.cell(0).area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn window_smaller_than_extent_can_empty_cells() {
        let pts = vec![p(0.0, 0.0), p(10.0, 0.0), p(5.0, 8.0)];
        let tri = Triangulation::new(&pts).unwrap();
        let tiny = Rect::new(p(-0.1, -0.1), p(0.1, 0.1));
        let vd = VoronoiDiagram::new(&tri, tiny);
        assert!(vd.cell(0).area() > 0.0);
        assert_eq!(vd.cell(1).polygon.len(), 0, "far site's cell misses window");
    }

    #[test]
    fn power_cells_shift_towards_the_heavier_site() {
        // Two sites on the x-axis; weighting the left one pushes the
        // radical axis right: x = 0.5 + (wp − wq) / (2·|q−p|) along the
        // segment. wp = 0.1, |q−p| = 0.5 → shift 0.1, axis at x = 0.6.
        let pts = vec![p(0.25, 0.5), p(0.75, 0.5)];
        let tri = Triangulation::with_site_metric(&pts, Some(&[0.1, 0.0])).unwrap();
        let vd = VoronoiDiagram::new(&tri, unit_window());
        assert!((vd.cell(0).area() - 0.6).abs() < 1e-12);
        assert!((vd.cell(1).area() - 0.4).abs() < 1e-12);
        assert!((vd.total_area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_cells_tile_window_and_hidden_cells_are_empty() {
        let pts = {
            let mut pts = uniform(60, 13);
            // Corner anchors so every random site is interior and can hide.
            pts.extend([p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0), p(0.0, 1.0)]);
            pts
        };
        let mut rng = StdRng::seed_from_u64(31);
        let w: Vec<f64> = (0..pts.len())
            .map(|_| f64::from(rng.gen_range(0..40i32)) * 1e-3)
            .collect();
        let tri = Triangulation::with_site_metric(&pts, Some(&w)).unwrap();
        let vd = VoronoiDiagram::new(&tri, unit_window());
        assert!(
            (vd.total_area() - 1.0).abs() < 1e-9,
            "power cells must tile the window, got {}",
            vd.total_area()
        );
        assert!(
            !tri.hidden_vertices().is_empty(),
            "this weight spread should hide at least one site"
        );
        for &h in tri.hidden_vertices() {
            assert!(vd.cell(h).polygon.is_empty(), "hidden cell {h} not empty");
        }
        // Monte-Carlo agreement with the brute-force power assignment.
        for _ in 0..400 {
            let q = p(rng.gen::<f64>(), rng.gen::<f64>());
            let best = (0..tri.vertex_count() as u32)
                .filter(|&v| !tri.is_hidden(v))
                .min_by(|&a, &b| {
                    (tri.point(a).dist_sq(q) - tri.weight(a))
                        .total_cmp(&(tri.point(b).dist_sq(q) - tri.weight(b)))
                })
                .unwrap();
            let cell = Polygon::new(vd.cell(best).polygon.clone()).unwrap();
            assert!(cell.contains(q), "q={q} not in the power cell of {best}");
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        #[test]
        fn prop_cells_tile_and_contain_generators(seed in 0u64..3000, n in 1usize..60) {
            let pts = uniform(n, seed);
            let tri = Triangulation::new(&pts).unwrap();
            let vd = VoronoiDiagram::new(&tri, unit_window());
            proptest::prop_assert!((vd.total_area() - 1.0).abs() < 1e-9);
            for cell in &vd.cells {
                if cell.polygon.len() >= 3 {
                    let poly = Polygon::new_unchecked(cell.polygon.clone());
                    proptest::prop_assert!(poly.contains(tri.point(cell.generator)));
                }
            }
        }
    }
}
