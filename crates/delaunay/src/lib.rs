//! # vaq-delaunay — Delaunay triangulation and Voronoi diagrams
//!
//! The Voronoi-adjacency substrate for the reproduction of *Area Queries
//! Based on Voronoi Diagrams* (ICDE 2020). The paper's Algorithm 1 needs
//! one oracle: `VN(P, p)`, the Voronoi neighbours of a site `p` — which,
//! by duality (Property 4 of the paper), are the Delaunay neighbours of
//! `p`. This crate provides:
//!
//! * [`Triangulation`] — an incremental Bowyer–Watson Delaunay
//!   triangulation with ghost triangles, Hilbert-ordered insertion and
//!   adaptive exact predicates. Exposes the CSR neighbour oracle
//!   ([`Triangulation::neighbors`]), point location
//!   ([`Triangulation::locate`]), the convex hull and a greedy
//!   nearest-vertex walk ([`Triangulation::nearest_vertex`], the
//!   Voronoi-walk ablation of the paper's R-tree seed query).
//! * [`VoronoiDiagram`] / [`cell_polygon`] — explicit Voronoi cells,
//!   clipped to a window, computed by half-plane clipping. The area-query
//!   engine's *cell expansion policy* uses [`cell_polygon`] on demand.
//! * [`hilbert`] — the Hilbert-curve ordering used for fast insertion.
//! * [`metric`] — the [`DiagramMetric`] abstraction that generalises the
//!   whole substrate to **power diagrams**: [`Triangulation`] is generic
//!   over the metric, with the zero-sized [`Euclidean`] default compiling
//!   to the classic unweighted algorithm and
//!   [`Triangulation::with_site_metric`] building the regular
//!   triangulation of weighted sites (dominated sites become *hidden* —
//!   cell-less — and every walk and cell routine handles them).
//!
//! Degenerate inputs are first-class: exact duplicates are merged (with a
//! two-way index mapping), and fully collinear inputs (including 1 or 2
//! points) fall back to a path-mode structure whose adjacency is still the
//! correct Voronoi adjacency.
//!
//! ## Example
//!
//! ```
//! use vaq_geom::Point;
//! use vaq_delaunay::Triangulation;
//!
//! let pts = vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(1.0, 0.0),
//!     Point::new(0.0, 1.0),
//!     Point::new(1.0, 1.0),
//!     Point::new(0.5, 0.5),
//! ];
//! let tri = Triangulation::new(&pts).unwrap();
//! // The centre point is a Voronoi neighbour of all four corners.
//! assert_eq!(tri.neighbors(4), &[0, 1, 2, 3]);
//! // Greedy walk finds the nearest site.
//! assert_eq!(tri.nearest_vertex(Point::new(0.9, 0.1), None), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flat;
pub mod graphs;
pub mod hilbert;
pub mod knn;
pub mod mesh;
pub mod metric;
pub mod triangulation;
pub mod voronoi;

pub use flat::TriangulationFlat;
pub use metric::{
    weights_are_uniform, DiagramKind, DiagramMetric, Euclidean, PowerWeights, SiteMetric,
};
pub use triangulation::{DelaunayError, InsertionOrder, Locate, Triangulation};
pub use voronoi::{cell_polygon, VoronoiCell, VoronoiDiagram};
