//! # vaq-race — model-check scenarios for the engine's concurrency
//!
//! Each scenario rebuilds one of the engine's real sharing patterns on
//! the model primitives from [`vaq_core::sync::model`] and hands it to
//! the deterministic interleaving explorer, which enumerates every
//! bounded 2–3-thread schedule and fails with a replayable decision
//! trace if any interleaving breaks the invariant:
//!
//! * **claim loop** ([`check_claim_loop`]) — the work-stealing counter
//!   behind every batch executor: no work index is double-claimed or
//!   skipped. [`check_buggy_claim_loop`] is the seeded race — the same
//!   loop with the `fetch_add` split into a load and a store — which the
//!   explorer must reject deterministically.
//! * **shard merge** ([`check_stat_absorption`]) — workers absorbing
//!   per-shard [`QueryStats`] in claim order: counters conserve and the
//!   merged total is independent of interleaving.
//! * **record-store split** ([`check_record_store_split`]) — the
//!   parallel shard build's take-don't-clone handoff of split
//!   [`RecordStore`]s: every shard store is taken exactly once and the
//!   per-record checksums conserve across the split.
//! * **dynamic overlay** ([`check_dynamic_overlay`]) — insert, remove
//!   and compaction on a [`DynamicAreaQueryEngine`] behind an exclusive
//!   lock: no tombstone is lost, no removed point resurrects, and
//!   compaction preserves the live id set in every schedule.
//!
//! The scenarios run (and explore schedules) under the **default**
//! build too, because the model module is always compiled. Building
//! with `RUSTFLAGS='--cfg vaq_race'` additionally swaps the facade the
//! *production* code uses onto the model implementation, enabling the
//! tests that drive `vaq_core::sync::ClaimCounter` and
//! `vaq_core::sync::Mutex` — the exact types the engine runs on —
//! through the explorer:
//!
//! ```text
//! RUSTFLAGS='--cfg vaq_race' cargo test -p vaq-race
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;
use vaq_core::sync::model::{self, AtomicUsize, Config, Failure, Mutex, Report};
use vaq_core::sync::Ordering;
use vaq_core::{DynamicAreaQueryEngine, QueryStats, RecordStore};
use vaq_geom::{Point, Rect};

/// One worker's claim loop: pull indices from the shared counter and
/// tally each claimed index until the counter runs past the work list.
fn drain_claims(next: &AtomicUsize, claimed: &[AtomicUsize]) {
    loop {
        // ordering: SeqCst — the model executes under sequential
        // consistency; the production idiom's Relaxed claim is justified
        // at its one definition site, vaq_core::sync::ClaimCounter.
        let i = next.fetch_add(1, Ordering::SeqCst);
        let Some(slot) = claimed.get(i) else { break };
        // ordering: SeqCst — per-index tally, read only after the join.
        slot.fetch_add(1, Ordering::SeqCst);
    }
}

/// The seeded race: the same loop with the atomic `fetch_add` split
/// into a load and a store, so two workers can claim the same index.
fn drain_claims_split(next: &AtomicUsize, claimed: &[AtomicUsize]) {
    loop {
        // ordering: SeqCst — the bug under test is the read-modify-write
        // split itself, not a memory-ordering subtlety.
        let i = next.load(Ordering::SeqCst);
        // ordering: SeqCst — as above: the split is the seeded bug.
        next.store(i + 1, Ordering::SeqCst);
        let Some(slot) = claimed.get(i) else { break };
        // ordering: SeqCst — per-index tally, read only after the join.
        slot.fetch_add(1, Ordering::SeqCst);
    }
}

fn explore_claims<F>(
    cfg: &Config,
    workers: usize,
    items: usize,
    drain: F,
) -> Result<Report, Failure>
where
    F: Fn(&AtomicUsize, &[AtomicUsize]) + Send + Sync + Copy + 'static,
{
    model::explore(cfg, move || {
        let next = Arc::new(AtomicUsize::new(0));
        let claimed: Arc<Vec<AtomicUsize>> =
            Arc::new((0..items).map(|_| AtomicUsize::new(0)).collect());
        let handles: Vec<model::JoinHandle> = (1..workers)
            .map(|_| {
                let next = Arc::clone(&next);
                let claimed = Arc::clone(&claimed);
                model::spawn(move || drain(&next, &claimed))
            })
            .collect();
        drain(&next, &claimed);
        for h in handles {
            h.join();
        }
        for (i, slot) in claimed.iter().enumerate() {
            // ordering: SeqCst — single-threaded readback after joins.
            let n = slot.load(Ordering::SeqCst);
            assert_eq!(n, 1, "work index {i} claimed {n} times");
        }
    })
}

/// Explores `workers` threads draining `items` work indices through the
/// shared-claim-counter idiom used by every batch executor. Fails if
/// any schedule double-claims or skips an index.
pub fn check_claim_loop(cfg: &Config, workers: usize, items: usize) -> Result<Report, Failure> {
    explore_claims(cfg, workers, items, |next, claimed| {
        drain_claims(next, claimed)
    })
}

/// The claim loop with a seeded race (the counter's read-modify-write
/// split into a load and a store). Two workers; the explorer is
/// expected to return a [`Failure`] whose trace replays the lost
/// update.
pub fn check_buggy_claim_loop(cfg: &Config, items: usize) -> Result<Report, Failure> {
    explore_claims(cfg, 2, items, |next, claimed| {
        drain_claims_split(next, claimed)
    })
}

/// A distinctive per-shard stats block (different counters per index so
/// a dropped or double-absorbed shard shows up in the sums).
fn shard_stats(i: usize) -> QueryStats {
    QueryStats {
        result_size: i + 1,
        candidates: 10 * (i + 1),
        accepted: 5 * (i + 1),
        containment_tests: 100 + i as u64,
        segment_tests: 7 * i as u64,
        cell_tests: 3 + i as u64,
        delta_scanned: i,
        payload_checksum: 0x1000 + i as u64,
        ..QueryStats::default()
    }
}

/// Explores two workers absorbing `shards` per-shard stats blocks into
/// one accumulator through [`QueryStats::absorb_shard`] — the sharded
/// engine's merge path. Fails if any interleaving loses or
/// double-counts a shard, i.e. proves the absorption is commutative and
/// conserving over every claim order.
pub fn check_stat_absorption(cfg: &Config, shards: usize) -> Result<Report, Failure> {
    let parts: Arc<Vec<QueryStats>> = Arc::new((0..shards).map(shard_stats).collect());
    let expected = {
        let mut acc = QueryStats::default();
        for st in parts.iter() {
            acc.absorb_shard(st);
        }
        acc
    };
    model::explore(cfg, move || {
        let next = Arc::new(AtomicUsize::new(0));
        let acc = Arc::new(Mutex::new(QueryStats::default()));
        let absorb_all = {
            let parts = Arc::clone(&parts);
            move |next: &AtomicUsize, acc: &Mutex<QueryStats>| loop {
                // ordering: SeqCst — model claim, see drain_claims.
                let i = next.fetch_add(1, Ordering::SeqCst);
                let Some(st) = parts.get(i) else { break };
                acc.lock()
                    .expect("stats lock is not poisoned")
                    .absorb_shard(st);
            }
        };
        let t = {
            let next = Arc::clone(&next);
            let acc = Arc::clone(&acc);
            let absorb_all = absorb_all.clone();
            model::spawn(move || absorb_all(&next, &acc))
        };
        absorb_all(&next, &acc);
        t.join();
        let got = *acc.lock().expect("stats lock is not poisoned");
        assert_eq!(
            got, expected,
            "absorbing shards in a different interleaving changed the merged stats"
        );
    })
}

/// Explores the parallel shard build's record-store handoff: a logical
/// [`RecordStore`] is split per shard, each split store parked in a
/// `Mutex<Option<…>>`, and two build workers claim shard indices and
/// *take* their store. Fails if any schedule takes a store twice,
/// leaves one behind, or loses checksum mass across the split.
pub fn check_record_store_split(cfg: &Config) -> Result<Report, Failure> {
    let logical = RecordStore::generate(6, 8, 0x5EED);
    let parts: Vec<Vec<u32>> = vec![vec![0, 2, 4], vec![1, 3, 5]];
    let expected: u64 = (0..logical.len() as u32)
        .map(|id| logical.read(id))
        .fold(0u64, u64::wrapping_add);
    model::explore(cfg, move || {
        let stores: Arc<Vec<Mutex<Option<RecordStore>>>> = Arc::new(
            logical
                .split(&parts)
                .expect("partition ids are in range")
                .into_iter()
                .map(|s| Mutex::new(Some(s)))
                .collect(),
        );
        let next = Arc::new(AtomicUsize::new(0));
        let total = Arc::new(Mutex::new(0u64));
        let t = {
            let stores = Arc::clone(&stores);
            let next = Arc::clone(&next);
            let total = Arc::clone(&total);
            model::spawn(move || take_and_sum(&stores, &next, &total))
        };
        take_and_sum(&stores, &next, &total);
        t.join();
        for slot in stores.iter() {
            assert!(
                slot.lock().expect("store lock is not poisoned").is_none(),
                "a shard store was left untaken"
            );
        }
        assert_eq!(
            *total.lock().expect("total lock is not poisoned"),
            expected,
            "checksum mass changed across the split handoff"
        );
    })
}

/// One build worker: claim shard indices, take the shard's store, and
/// fold its record checksums into the shared total.
fn take_and_sum(stores: &[Mutex<Option<RecordStore>>], next: &AtomicUsize, total: &Mutex<u64>) {
    loop {
        // ordering: SeqCst — model claim, see drain_claims.
        let i = next.fetch_add(1, Ordering::SeqCst);
        let Some(slot) = stores.get(i) else { break };
        let store = slot.lock().expect("store lock is not poisoned").take();
        let store = store.expect("each shard store is taken exactly once");
        let sum = (0..store.len() as u32)
            .map(|id| store.read(id))
            .fold(0u64, u64::wrapping_add);
        let mut t = total.lock().expect("total lock is not poisoned");
        *t = t.wrapping_add(sum);
    }
}

/// Explores two writers sharing a [`DynamicAreaQueryEngine`] behind an
/// exclusive lock: each inserts one point and removes one distinct base
/// point, then the main thread compacts and queries. Fails if any
/// interleaving loses a tombstone (a removed point resurrects), drops
/// an insert, or lets compaction change the live id set — i.e. proves
/// a plain mutex is a sufficient sharing contract for the overlay
/// state.
pub fn check_dynamic_overlay(cfg: &Config) -> Result<Report, Failure> {
    let base: Vec<Point> = vec![
        Point::new(0.0, 0.0),
        Point::new(1.0, 0.0),
        Point::new(2.0, 0.0),
        Point::new(0.0, 1.0),
        Point::new(1.0, 1.0),
        Point::new(2.0, 1.0),
    ];
    let everywhere = Rect::new(Point::new(-1.0, -1.0), Point::new(3.0, 2.0));
    // Base ids 0..6; the two inserts receive ids {6, 7} in schedule
    // order, so the *set* of live ids is interleaving-independent even
    // though the id→point mapping is not.
    let expected: Vec<u64> = vec![0, 3, 4, 5, 6, 7];
    model::explore(cfg, move || {
        let eng = Arc::new(Mutex::new(DynamicAreaQueryEngine::new(&base)));
        let t = {
            let eng = Arc::clone(&eng);
            model::spawn(move || {
                eng.lock()
                    .expect("engine lock is not poisoned")
                    .insert(Point::new(0.5, 0.5));
                let removed = eng.lock().expect("engine lock is not poisoned").remove(1);
                assert!(removed, "base id 1 is live until this remove");
            })
        };
        eng.lock()
            .expect("engine lock is not poisoned")
            .insert(Point::new(1.5, 0.5));
        let removed = eng.lock().expect("engine lock is not poisoned").remove(2);
        assert!(removed, "base id 2 is live until this remove");
        t.join();
        let mut eng = eng.lock().expect("engine lock is not poisoned");
        assert_eq!(eng.len(), 6, "6 base + 2 inserts - 2 removes");
        assert_eq!(
            eng.overlay_len(),
            4,
            "2 live delta points + 2 base tombstones"
        );
        let mut before = eng.query(&everywhere);
        before.sort_unstable();
        assert_eq!(before, expected, "live id set before compaction");
        eng.compact();
        assert_eq!(eng.overlay_len(), 0, "compaction folds the overlay away");
        let mut after = eng.query(&everywhere);
        after.sort_unstable();
        assert_eq!(
            after, expected,
            "compaction must preserve the live id set (no resurrection, no loss)"
        );
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_loop_two_threads_exhaustive() {
        let report = check_claim_loop(&Config::exhaustive(), 2, 3)
            .expect("the atomic claim loop is race-free");
        assert!(report.complete, "schedule space must be exhausted");
        assert!(
            report.schedules > 10,
            "expected a real interleaving space, got {}",
            report.schedules
        );
    }

    #[test]
    fn claim_loop_three_threads_bounded() {
        let report = check_claim_loop(&Config::default(), 3, 4)
            .expect("the atomic claim loop is race-free with three workers");
        assert!(report.schedules > 10);
    }

    #[test]
    fn claim_loop_more_workers_than_items() {
        // Threads > work items: surplus workers claim past the end and
        // leave; still race-free in every schedule.
        let report =
            check_claim_loop(&Config::default(), 3, 1).expect("surplus workers terminate cleanly");
        assert!(report.schedules > 1);
    }

    #[test]
    fn seeded_claim_race_fails_deterministically() {
        let first = check_buggy_claim_loop(&Config::default(), 2)
            .expect_err("the split read-modify-write must double-claim in some schedule");
        assert!(
            first.message.contains("claimed"),
            "failure should be the claim-tally assert: {first}"
        );
        assert!(!first.schedule.is_empty(), "failure carries a replay trace");
        // Deterministic: the same seeded bug fails on the same schedule.
        let second =
            check_buggy_claim_loop(&Config::default(), 2).expect_err("same bug, same exploration");
        assert_eq!(first.schedule, second.schedule);
        assert_eq!(first.schedules, second.schedules);
    }

    #[test]
    fn stat_absorption_is_order_independent() {
        let report = check_stat_absorption(&Config::exhaustive(), 3)
            .expect("absorb_shard conserves counters in every claim order");
        assert!(report.complete);
        assert!(report.schedules > 10);
    }

    #[test]
    fn record_store_split_conserves_checksums() {
        let report = check_record_store_split(&Config::exhaustive())
            .expect("every interleaving takes each store once and conserves checksums");
        assert!(report.complete);
        assert!(report.schedules > 10);
    }

    #[test]
    fn dynamic_overlay_keeps_tombstones_and_inserts() {
        let report = check_dynamic_overlay(&Config::default())
            .expect("no interleaving loses a tombstone or resurrects a point");
        assert!(report.schedules > 10);
    }

    /// Tests that drive the *production* facade types through the
    /// explorer. Only meaningful when `--cfg vaq_race` rebinds
    /// `vaq_core::sync::{AtomicUsize, Mutex}` to the model
    /// implementation; under the default passthrough facade these
    /// types have no scheduling points.
    #[cfg(vaq_race)]
    mod production_facade {
        use super::*;
        use vaq_core::sync::ClaimCounter;

        #[test]
        fn production_claim_counter_is_exhaustively_unique() {
            let report = model::explore(&Config::exhaustive(), || {
                let counter = Arc::new(ClaimCounter::new());
                let claimed: Arc<Vec<AtomicUsize>> =
                    Arc::new((0..3).map(|_| AtomicUsize::new(0)).collect());
                let t = {
                    let counter = Arc::clone(&counter);
                    let claimed = Arc::clone(&claimed);
                    model::spawn(move || loop {
                        let i = counter.claim();
                        let Some(slot) = claimed.get(i) else { break };
                        // ordering: SeqCst — per-index tally.
                        slot.fetch_add(1, Ordering::SeqCst);
                    })
                };
                loop {
                    let i = counter.claim();
                    let Some(slot) = claimed.get(i) else { break };
                    // ordering: SeqCst — per-index tally.
                    slot.fetch_add(1, Ordering::SeqCst);
                }
                t.join();
                for (i, slot) in claimed.iter().enumerate() {
                    // ordering: SeqCst — single-threaded readback.
                    let n = slot.load(Ordering::SeqCst);
                    assert_eq!(n, 1, "work index {i} claimed {n} times");
                }
            })
            .expect("the production ClaimCounter idiom is race-free");
            assert!(report.complete);
            assert!(report.schedules > 10);
        }

        #[test]
        fn production_mutex_serialises_increments() {
            let report = model::explore(&Config::exhaustive(), || {
                let shared = Arc::new(vaq_core::sync::Mutex::new(0_usize));
                let t = {
                    let shared = Arc::clone(&shared);
                    model::spawn(move || {
                        let mut g = shared.lock().expect("lock is not poisoned");
                        *g += 1;
                    })
                };
                {
                    let mut g = shared.lock().expect("lock is not poisoned");
                    *g += 1;
                }
                t.join();
                assert_eq!(*shared.lock().expect("lock is not poisoned"), 2);
            })
            .expect("the production facade mutex serialises its critical sections");
            assert!(report.complete);
            assert!(report.schedules > 1);
        }
    }
}
