//! The R-tree proper: Guttman insertion with quadratic split (or the R\*
//! heuristics, see [`SplitAlgorithm`]), deletion with tree condensing, and
//! STR (sort-tile-recursive) bulk loading.

use crate::node::{Entry, Node, NO_NODE};
use crate::rstar;
use vaq_geom::{Point, Rect};

/// Which insertion/split heuristics a dynamically built tree uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SplitAlgorithm {
    /// Guttman's original: least-enlargement descent, quadratic split.
    #[default]
    Quadratic,
    /// Beckmann et al.'s R\*: overlap-minimising descent above the leaves,
    /// forced reinsertion on first overflow per level, margin/overlap
    /// driven split. Slower inserts, better-packed trees.
    RStar,
}

/// Default maximum entries per node. 16 keeps nodes around one cache line
/// pair and matches common main-memory R-tree configurations.
pub const DEFAULT_MAX_ENTRIES: usize = 16;

/// A dynamic R-tree over 2-D points.
///
/// Points are referenced by caller-supplied `u32` ids; the tree stores the
/// coordinates itself (in leaf entry MBRs), so lookups never need an
/// external point table. Supports:
///
/// * [`RTree::insert`] — Guttman insertion with **quadratic split**;
/// * [`RTree::remove`] — deletion with tree condensing and re-insertion;
/// * [`RTree::bulk_load`] — **STR** packing (the standard bulk load used by
///   PostGIS and libspatialindex), producing a near-perfectly packed tree;
/// * window, nearest-neighbour and k-nearest-neighbour queries (in
///   [`crate::query`]), each with an optional node-access statistics sink.
///
/// The traditional area-query baseline of the reproduced paper performs a
/// window query with the query area's MBR here; the paper's own method uses
/// this same tree for its seed nearest-neighbour lookup ("for fairness, the
/// index used to provide the NN query in our method is also R-tree").
pub struct RTree {
    pub(crate) nodes: Vec<Node>,
    free: Vec<u32>,
    pub(crate) root: u32,
    len: usize,
    max_entries: usize,
    min_entries: usize,
    algorithm: SplitAlgorithm,
}

impl RTree {
    /// Creates an empty tree with the default node capacity.
    pub fn new() -> RTree {
        RTree::with_params(DEFAULT_MAX_ENTRIES)
    }

    /// Creates an empty tree with the given maximum node fan-out
    /// (minimum fill is 40 % of it, per Guttman's recommendation).
    ///
    /// # Panics
    ///
    /// Panics if `max_entries < 4` (quadratic split needs room for two
    /// seeds plus minimum fill on both sides).
    pub fn with_params(max_entries: usize) -> RTree {
        RTree::with_algorithm(max_entries, SplitAlgorithm::Quadratic)
    }

    /// Creates an empty tree with an explicit fan-out and insertion
    /// algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `max_entries < 4`.
    pub fn with_algorithm(max_entries: usize, algorithm: SplitAlgorithm) -> RTree {
        assert!(max_entries >= 4, "max_entries must be at least 4");
        let mut tree = RTree {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NO_NODE,
            len: 0,
            max_entries,
            min_entries: (max_entries * 2).div_ceil(5).max(2),
            algorithm,
        };
        tree.root = tree.alloc(Node::new(0));
        tree
    }

    /// The insertion algorithm this tree was configured with.
    pub fn algorithm(&self) -> SplitAlgorithm {
        self.algorithm
    }

    /// Bulk loads `points` (ids `0..n`) with STR packing and the default
    /// fan-out.
    pub fn bulk_load(points: &[Point]) -> RTree {
        RTree::bulk_load_with_params(points, DEFAULT_MAX_ENTRIES)
    }

    /// Bulk loads with an explicit fan-out.
    pub fn bulk_load_with_params(points: &[Point], max_entries: usize) -> RTree {
        let mut tree = RTree::with_params(max_entries);
        if points.is_empty() {
            return tree;
        }
        let mut entries: Vec<Entry> = points
            .iter()
            .enumerate()
            .map(|(i, &p)| Entry::for_point(i as u32, p))
            .collect();
        tree.len = entries.len();
        // Release the empty leaf root created by with_params.
        tree.release(tree.root);
        let mut level = 0u32;
        loop {
            entries = tree.str_pack(entries, level);
            if entries.len() == 1 {
                // vaq-lint: allow(panic-hygiene) -- guarded by the
                // len == 1 check on the line above.
                tree.root = entries[0].child;
                return tree;
            }
            level += 1;
        }
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no points are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree: number of levels (a single leaf root = 1).
    pub fn height(&self) -> usize {
        self.nodes[self.root as usize].level as usize + 1
    }

    /// Maximum entries per node.
    #[inline]
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// Minimum fill per non-root node maintained by insert/delete.
    #[inline]
    pub fn min_entries(&self) -> usize {
        self.min_entries
    }

    /// MBR of the whole tree ([`Rect::EMPTY`] when empty).
    pub fn bbox(&self) -> Rect {
        self.node(self.root).mbr()
    }

    /// Inserts point `p` with caller id `id`.
    ///
    /// Duplicate coordinates and duplicate ids are permitted (the tree is a
    /// multiset); [`RTree::remove`] removes one matching entry.
    pub fn insert(&mut self, id: u32, p: Point) {
        // Forced-reinsertion bookkeeping: at most one reinsertion pass per
        // level per top-level insertion (R* only). 64 levels is far beyond
        // any reachable height.
        let mut allow = [self.algorithm == SplitAlgorithm::RStar; 64];
        self.insert_entry_with(Entry::for_point(id, p), 0, &mut allow);
        self.len += 1;
    }

    /// Removes one entry with exactly this `id` and coordinates. Returns
    /// `true` if an entry was found and removed.
    pub fn remove(&mut self, id: u32, p: Point) -> bool {
        let mut path = Vec::new();
        if !self.find_leaf(self.root, id, p, &mut path) {
            return false;
        }
        // `path` holds (node, entry index) pairs from root to the leaf; the
        // final element's entry index is the point entry itself.
        let (leaf, entry_idx) = *path.last().expect("found implies non-empty path");
        self.node_mut(leaf).entries.swap_remove(entry_idx);
        self.len -= 1;

        // Condense: walk back up, dropping underflowing nodes and
        // collecting their points for re-insertion.
        let mut orphans: Vec<Entry> = Vec::new();
        for k in (0..path.len() - 1).rev() {
            let (parent, child_idx) = path[k];
            let child = self.node(parent).entries[child_idx].child;
            if self.node(child).entries.len() < self.min_entries {
                self.node_mut(parent).entries.swap_remove(child_idx);
                self.collect_points(child, &mut orphans);
            } else {
                self.node_mut(parent).entries[child_idx].rect = self.node(child).mbr();
            }
            // Note: swap_remove above invalidates sibling entry indices
            // stored deeper in `path`, but those were already consumed —
            // we iterate strictly bottom-up.
        }
        // Collapse a root chain: an internal root with one child hands the
        // root role to that child.
        while !self.node(self.root).is_leaf() && self.node(self.root).entries.len() == 1 {
            let old = self.root;
            // vaq-lint: allow(panic-hygiene) -- the loop condition just
            // established exactly one entry.
            self.root = self.node(old).entries[0].child;
            self.release(old);
        }
        for e in orphans {
            self.insert_entry(e, 0);
        }
        true
    }

    /// Iterates over all `(id, point)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Point)> + '_ {
        let mut stack = vec![self.root];
        std::iter::from_fn(move || loop {
            let &top = stack.last()?;
            let node = self.node(top);
            stack.pop();
            if node.is_leaf() {
                // Yield all leaf entries by chaining through a buffer.
                // Simpler: push onto a result small buffer — but from_fn is
                // one-at-a-time; instead flatten below.
                return Some(top);
            }
            for e in &node.entries {
                stack.push(e.child);
            }
        })
        .flat_map(move |leaf| {
            self.node(leaf)
                .entries
                .iter()
                .map(|e| (e.child, e.rect.min))
        })
    }

    // ------------------------------------------------------------------
    // Arena plumbing.
    // ------------------------------------------------------------------

    #[inline]
    pub(crate) fn node(&self, id: u32) -> &Node {
        &self.nodes[id as usize]
    }

    #[inline]
    pub(crate) fn node_mut(&mut self, id: u32) -> &mut Node {
        &mut self.nodes[id as usize]
    }

    fn alloc(&mut self, node: Node) -> u32 {
        if let Some(id) = self.free.pop() {
            self.nodes[id as usize] = node;
            id
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn release(&mut self, id: u32) {
        self.nodes[id as usize].entries = Vec::new();
        self.free.push(id);
    }

    // ------------------------------------------------------------------
    // Insertion.
    // ------------------------------------------------------------------

    /// Inserts `entry` into a node at `target_level`, splitting and
    /// propagating upward as needed (no forced reinsertion — used by
    /// deletion's orphan handling, where R* reinsertion would be wasted
    /// work on entries that were just removed).
    fn insert_entry(&mut self, entry: Entry, target_level: u32) {
        let mut allow = [false; 64];
        self.insert_entry_with(entry, target_level, &mut allow);
    }

    /// Insertion core. `allow[level]` grants one forced-reinsertion pass
    /// at that level (R\* overflow treatment); a split is used otherwise.
    fn insert_entry_with(&mut self, entry: Entry, target_level: u32, allow: &mut [bool; 64]) {
        let mut path: Vec<(u32, usize)> = Vec::new();
        let mut cur = self.root;
        while self.node(cur).level > target_level {
            let node = self.node(cur);
            let idx = if self.algorithm == SplitAlgorithm::RStar && node.level == 1 {
                rstar::choose_subtree_overlap(node, &entry.rect)
            } else {
                choose_subtree(node, &entry.rect)
            };
            path.push((cur, idx));
            cur = self.node(cur).entries[idx].child;
        }
        self.node_mut(cur).entries.push(entry);

        loop {
            let level = self.node(cur).level as usize;
            let overflow = self.node(cur).entries.len() > self.max_entries;
            // R* overflow treatment: reinsert before splitting, once per
            // level, never at the root.
            if overflow && !path.is_empty() && allow[level] {
                allow[level] = false;
                let max_entries = self.max_entries;
                let victims = rstar::reinsert_victims(self.node_mut(cur), max_entries);
                // Tighten ancestor rectangles before re-descending.
                let mut child = cur;
                for &(parent, idx) in path.iter().rev() {
                    self.node_mut(parent).entries[idx].rect = self.node(child).mbr();
                    child = parent;
                }
                for v in victims {
                    self.insert_entry_with(v, level as u32, allow);
                }
                return;
            }
            let new_sibling = if overflow {
                Some(self.split_node(cur))
            } else {
                None
            };
            match path.pop() {
                Some((parent, idx)) => {
                    self.node_mut(parent).entries[idx].rect = self.node(cur).mbr();
                    if let Some(sib) = new_sibling {
                        let rect = self.node(sib).mbr();
                        self.node_mut(parent)
                            .entries
                            .push(Entry { rect, child: sib });
                    }
                    cur = parent;
                }
                None => {
                    if let Some(sib) = new_sibling {
                        let mut root = Node::new(self.node(cur).level + 1);
                        root.entries.push(Entry {
                            rect: self.node(cur).mbr(),
                            child: cur,
                        });
                        root.entries.push(Entry {
                            rect: self.node(sib).mbr(),
                            child: sib,
                        });
                        self.root = self.alloc(root);
                    }
                    return;
                }
            }
        }
    }

    /// Splits an overflowing node with the configured algorithm, returning
    /// the id of the new sibling.
    fn split_node(&mut self, n: u32) -> u32 {
        let level = self.node(n).level;
        let entries = std::mem::take(&mut self.node_mut(n).entries);
        let (g1, g2) = match self.algorithm {
            SplitAlgorithm::Quadratic => quadratic_split(entries, self.min_entries),
            SplitAlgorithm::RStar => rstar::rstar_split(entries, self.min_entries),
        };
        self.node_mut(n).entries = g1;
        self.alloc(Node { level, entries: g2 })
    }

    // ------------------------------------------------------------------
    // Deletion helpers.
    // ------------------------------------------------------------------

    /// Depth-first search for the leaf entry `(id, p)`; fills `path` with
    /// `(node, entry index)` pairs root→leaf on success.
    fn find_leaf(&self, n: u32, id: u32, p: Point, path: &mut Vec<(u32, usize)>) -> bool {
        let node = self.node(n);
        if node.is_leaf() {
            if let Some(i) = node
                .entries
                .iter()
                .position(|e| e.child == id && e.rect.min == p)
            {
                path.push((n, i));
                return true;
            }
            return false;
        }
        for (i, e) in node.entries.iter().enumerate() {
            if e.rect.contains_point(p) {
                path.push((n, i));
                if self.find_leaf(e.child, id, p, path) {
                    return true;
                }
                path.pop();
            }
        }
        false
    }

    /// Collects every point entry in the subtree rooted at `n` and frees
    /// all its nodes.
    fn collect_points(&mut self, n: u32, out: &mut Vec<Entry>) {
        let entries = std::mem::take(&mut self.node_mut(n).entries);
        if self.node(n).is_leaf() {
            out.extend(entries);
        } else {
            for e in entries {
                self.collect_points(e.child, out);
            }
        }
        self.release(n);
    }

    // ------------------------------------------------------------------
    // STR bulk loading.
    // ------------------------------------------------------------------

    /// Packs `items` into new nodes at `level` using sort-tile-recursive
    /// ordering; returns parent entries referencing the new nodes.
    fn str_pack(&mut self, mut items: Vec<Entry>, level: u32) -> Vec<Entry> {
        let m = self.max_entries;
        if items.len() <= m {
            let id = self.alloc(Node {
                level,
                entries: items,
            });
            return vec![Entry {
                rect: self.node(id).mbr(),
                child: id,
            }];
        }
        let node_count = items.len().div_ceil(m);
        let slice_count = (node_count as f64).sqrt().ceil() as usize;
        let slice_size = slice_count.max(1) * m;
        items.sort_by(|a, b| a.rect.center().x.total_cmp(&b.rect.center().x));
        let mut parents = Vec::with_capacity(node_count);
        for slice in items.chunks_mut(slice_size) {
            slice.sort_by(|a, b| a.rect.center().y.total_cmp(&b.rect.center().y));
            for group in slice.chunks(m) {
                let id = self.alloc(Node {
                    level,
                    entries: group.to_vec(),
                });
                parents.push(Entry {
                    rect: self.node(id).mbr(),
                    child: id,
                });
            }
        }
        parents
    }

    // ------------------------------------------------------------------
    // Invariant checking (tests).
    // ------------------------------------------------------------------

    /// Verifies structural invariants. With `strict_min` set, also checks
    /// the Guttman minimum fill on every non-root node (bulk-loaded trees
    /// may have one under-filled tail node per level, so pass `false` for
    /// them).
    pub fn check_invariants(&self, strict_min: bool) -> Result<(), String> {
        let mut count = 0usize;
        self.check_node(self.root, None, true, strict_min, &mut count)?;
        if count != self.len {
            return Err(format!("len {} but {} leaf entries", self.len, count));
        }
        Ok(())
    }

    fn check_node(
        &self,
        n: u32,
        expect_rect: Option<Rect>,
        is_root: bool,
        strict_min: bool,
        count: &mut usize,
    ) -> Result<(), String> {
        let node = self.node(n);
        if node.entries.len() > self.max_entries {
            return Err(format!("node {n} overflows: {}", node.entries.len()));
        }
        if !is_root && strict_min && node.entries.len() < self.min_entries {
            return Err(format!("node {n} underflows: {}", node.entries.len()));
        }
        if let Some(r) = expect_rect {
            let mbr = node.mbr();
            if !(r.contains_rect(&mbr) && mbr.contains_rect(&r)) {
                return Err(format!("node {n}: parent rect does not match MBR"));
            }
        }
        if node.is_leaf() {
            *count += node.entries.len();
            return Ok(());
        }
        for e in &node.entries {
            let child = self.node(e.child);
            if child.level + 1 != node.level {
                return Err(format!(
                    "node {n} level {} has child at level {}",
                    node.level, child.level
                ));
            }
            self.check_node(e.child, Some(e.rect), false, strict_min, count)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Flat arena access (engine snapshots).
    // ------------------------------------------------------------------

    /// Flattens the node arena into POD arrays (see [`RTreeRaw`]). Leaf
    /// entries carry degenerate point MBRs that duplicate the indexed
    /// coordinates, so only their point ids are emitted; internal
    /// entries keep their full rectangles. [`RTree::from_raw`] restores
    /// the exact arena given the same points.
    pub fn raw_parts(&self) -> RTreeRaw {
        let mut raw = RTreeRaw {
            levels: Vec::with_capacity(self.nodes.len()),
            entry_offsets: Vec::with_capacity(self.nodes.len() + 1),
            entry_children: Vec::new(),
            inner_rects: Vec::new(),
            free: self.free.clone(),
            root: self.root,
            len: self.len as u64,
            max_entries: self.max_entries as u32,
            algorithm: self.algorithm,
        };
        raw.entry_offsets.push(0);
        for node in &self.nodes {
            raw.levels.push(node.level);
            for e in &node.entries {
                raw.entry_children.push(e.child);
                if node.level > 0 {
                    raw.inner_rects.extend_from_slice(&[
                        e.rect.min.x,
                        e.rect.min.y,
                        e.rect.max.x,
                        e.rect.max.y,
                    ]);
                }
            }
            raw.entry_offsets.push(raw.entry_children.len() as u32);
        }
        raw
    }

    /// Rebuilds a tree from [`RTree::raw_parts`] output and the points
    /// it indexed (leaf MBRs are reconstructed from `points`, so the
    /// caller must pass the same array the tree was built over).
    ///
    /// Validates arena shape — offset monotonicity, id ranges, level
    /// sanity — and then the full structural invariants, so corrupted
    /// or inconsistent input comes back as `Err`, never as a tree that
    /// answers queries wrongly or panics later.
    pub fn from_raw(raw: RTreeRaw, points: &[Point]) -> Result<RTree, String> {
        let n_nodes = raw.levels.len();
        if raw.entry_offsets.len() != n_nodes + 1 {
            return Err(format!(
                "offset table holds {} entries for {} nodes",
                raw.entry_offsets.len(),
                n_nodes
            ));
        }
        if raw.entry_offsets.first() != Some(&0) {
            return Err("offset table does not start at 0".to_string());
        }
        if raw.max_entries < 4 {
            return Err(format!("fan-out {} below minimum 4", raw.max_entries));
        }
        if n_nodes == 0 || raw.root as usize >= n_nodes {
            return Err(format!("root {} out of range ({n_nodes} nodes)", raw.root));
        }
        // A fan-out >= 4 tree of height 64 exceeds any memory; the bound
        // also caps `check_node` recursion on crafted input.
        if raw.levels[raw.root as usize] >= 64 {
            return Err(format!(
                "root level {} implausible",
                raw.levels[raw.root as usize]
            ));
        }
        let total = raw.entry_offsets[n_nodes] as usize;
        if raw.entry_children.len() != total {
            return Err(format!(
                "{} children but offsets end at {total}",
                raw.entry_children.len()
            ));
        }
        let inner_total: usize = (0..n_nodes)
            .filter(|&i| raw.levels[i] > 0)
            .map(|i| (raw.entry_offsets[i + 1] - raw.entry_offsets[i]) as usize)
            .sum();
        if raw.inner_rects.len() != 4 * inner_total {
            return Err(format!(
                "{} rect coordinates for {inner_total} internal entries",
                raw.inner_rects.len()
            ));
        }
        let max_entries = raw.max_entries as usize;
        let mut nodes = Vec::with_capacity(n_nodes);
        let mut inner_at = 0usize;
        for i in 0..n_nodes {
            let level = raw.levels[i];
            let lo = raw.entry_offsets[i] as usize;
            let hi = raw.entry_offsets[i + 1] as usize;
            if hi < lo {
                return Err(format!("offset table decreases at node {i}"));
            }
            let mut entries = Vec::with_capacity(hi - lo);
            for &child in &raw.entry_children[lo..hi] {
                let rect = if level == 0 {
                    let p = points.get(child as usize).ok_or_else(|| {
                        format!("leaf references point {child} of {}", points.len())
                    })?;
                    Rect::from_point(*p)
                } else {
                    if child as usize >= n_nodes {
                        return Err(format!("node {i} references child {child}"));
                    }
                    // vaq-lint: allow(panic-hygiene) -- inner_at < inner_total, and
                    // inner_rects.len() == 4 * inner_total was checked above
                    let r = &raw.inner_rects[4 * inner_at..4 * inner_at + 4];
                    inner_at += 1;
                    // vaq-lint: allow(panic-hygiene) -- r is a 4-element slice
                    Rect::new(Point::new(r[0], r[1]), Point::new(r[2], r[3]))
                };
                entries.push(Entry { rect, child });
            }
            nodes.push(Node { level, entries });
        }
        for &f in &raw.free {
            if f as usize >= n_nodes {
                return Err(format!("free list references node {f}"));
            }
        }
        let tree = RTree {
            nodes,
            free: raw.free,
            root: raw.root,
            len: raw.len as usize,
            max_entries,
            min_entries: (max_entries * 2).div_ceil(5).max(2),
            algorithm: raw.algorithm,
        };
        tree.check_invariants(false)?;
        Ok(tree)
    }
}

/// The R-tree arena flattened into POD arrays for serialization.
///
/// Node `i` sits at level `levels[i]` and owns the half-open entry range
/// `entry_offsets[i] .. entry_offsets[i + 1]` of `entry_children`.
/// Internal entries additionally consume four coordinates (min x, min y,
/// max x, max y) from `inner_rects`, in arena order; leaf entries store
/// no rectangle — their MBR is the indexed point itself.
pub struct RTreeRaw {
    /// Per-node level (0 = leaf).
    pub levels: Vec<u32>,
    /// Per-node entry range bounds into `entry_children`; length is
    /// `levels.len() + 1`, first element 0.
    pub entry_offsets: Vec<u32>,
    /// Point id (leaf) or child node id (internal) per entry.
    pub entry_children: Vec<u32>,
    /// Rectangles of internal entries only, four coordinates each.
    pub inner_rects: Vec<f64>,
    /// Arena free list (released node ids).
    pub free: Vec<u32>,
    /// Root node id.
    pub root: u32,
    /// Indexed point count.
    pub len: u64,
    /// Maximum entries per node.
    pub max_entries: u32,
    /// Insertion/split heuristics of the tree.
    pub algorithm: SplitAlgorithm,
}

impl Default for RTree {
    fn default() -> Self {
        RTree::new()
    }
}

/// Guttman `ChooseLeaf` heuristic: least enlargement, ties broken by
/// smallest area, then by fewest entries.
fn choose_subtree(node: &Node, r: &Rect) -> usize {
    let mut best = 0;
    let mut best_enlarge = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for (i, e) in node.entries.iter().enumerate() {
        let enlarge = e.rect.enlargement(r);
        let area = e.rect.area();
        if enlarge < best_enlarge || (enlarge == best_enlarge && area < best_area) {
            best = i;
            best_enlarge = enlarge;
            best_area = area;
        }
    }
    best
}

/// Guttman quadratic split: seed with the pair wasting the most area, then
/// repeatedly assign the entry with the strongest preference.
fn quadratic_split(mut entries: Vec<Entry>, min_fill: usize) -> (Vec<Entry>, Vec<Entry>) {
    debug_assert!(entries.len() >= 2);
    // PickSeeds: maximize dead area of the pair's union.
    let (mut s1, mut s2) = (0, 1);
    let mut worst = f64::NEG_INFINITY;
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let d = entries[i].rect.union(&entries[j].rect).area()
                - entries[i].rect.area()
                - entries[j].rect.area();
            if d > worst {
                worst = d;
                s1 = i;
                s2 = j;
            }
        }
    }
    // Remove the higher index first so the lower stays valid.
    let e2 = entries.swap_remove(s2.max(s1));
    let e1 = entries.swap_remove(s2.min(s1));
    let mut g1 = vec![e1];
    let mut g2 = vec![e2];
    // vaq-lint: allow(panic-hygiene) -- g1/g2 were just built with one
    // seed entry each.
    let mut r1 = g1[0].rect;
    // vaq-lint: allow(panic-hygiene) -- same single-seed invariant as
    // the line above.
    let mut r2 = g2[0].rect;

    while !entries.is_empty() {
        let remaining = entries.len();
        // Force-assign when a group needs every remaining entry to reach
        // minimum fill.
        if g1.len() + remaining <= min_fill {
            for e in entries.drain(..) {
                r1 = r1.union(&e.rect);
                g1.push(e);
            }
            break;
        }
        if g2.len() + remaining <= min_fill {
            for e in entries.drain(..) {
                r2 = r2.union(&e.rect);
                g2.push(e);
            }
            break;
        }
        // PickNext: entry with the greatest difference of enlargements.
        let mut pick = 0;
        let mut pick_diff = f64::NEG_INFINITY;
        for (i, e) in entries.iter().enumerate() {
            let d1 = r1.enlargement(&e.rect);
            let d2 = r2.enlargement(&e.rect);
            let diff = (d1 - d2).abs();
            if diff > pick_diff {
                pick_diff = diff;
                pick = i;
            }
        }
        let e = entries.swap_remove(pick);
        let d1 = r1.enlargement(&e.rect);
        let d2 = r2.enlargement(&e.rect);
        // Prefer smaller enlargement; ties → smaller area → fewer entries.
        let to_first = match d1.total_cmp(&d2) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => match r1.area().total_cmp(&r2.area()) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => g1.len() <= g2.len(),
            },
        };
        if to_first {
            r1 = r1.union(&e.rect);
            g1.push(e);
        } else {
            r2 = r2.union(&e.rect);
            g2.push(e);
        }
    }
    (g1, g2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn assert_same_arena(a: &RTree, b: &RTree) {
        assert_eq!(a.nodes.len(), b.nodes.len());
        assert_eq!(a.root, b.root);
        assert_eq!(a.len, b.len);
        assert_eq!(a.free, b.free);
        assert_eq!(a.max_entries, b.max_entries);
        assert_eq!(a.min_entries, b.min_entries);
        assert_eq!(a.algorithm, b.algorithm);
        for (na, nb) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(na.level, nb.level);
            assert_eq!(na.entries.len(), nb.entries.len());
            for (ea, eb) in na.entries.iter().zip(&nb.entries) {
                assert_eq!(ea.child, eb.child);
                assert_eq!(ea.rect.min, eb.rect.min);
                assert_eq!(ea.rect.max, eb.rect.max);
            }
        }
    }

    #[test]
    fn raw_roundtrip_restores_the_exact_arena() {
        let pts = uniform(700, 0xF1A7);
        for tree in [RTree::bulk_load(&pts), {
            // A dynamically grown tree with a populated free list.
            let mut t = RTree::with_params(8);
            for (i, &q) in pts.iter().enumerate() {
                t.insert(i as u32, q);
            }
            for (i, &q) in pts.iter().enumerate().take(300) {
                assert!(t.remove(i as u32, q));
            }
            t
        }] {
            let back = RTree::from_raw(tree.raw_parts(), &pts).unwrap();
            assert_same_arena(&tree, &back);
        }
    }

    #[test]
    fn from_raw_rejects_malformed_arenas() {
        let pts = uniform(60, 0xBAD);
        let tree = RTree::bulk_load(&pts);
        let mut raw = tree.raw_parts();
        raw.root = raw.levels.len() as u32; // out of range
        assert!(RTree::from_raw(raw, &pts).is_err());

        let mut raw = tree.raw_parts();
        raw.entry_offsets.pop();
        assert!(RTree::from_raw(raw, &pts).is_err());

        let mut raw = tree.raw_parts();
        if let Some(c) = raw.entry_children.first_mut() {
            *c = u32::MAX - 1; // leaf points past the point array
        }
        assert!(RTree::from_raw(raw, &pts).is_err());

        let mut raw = tree.raw_parts();
        raw.len += 1; // leaf-entry count no longer matches
        assert!(RTree::from_raw(raw, &pts).is_err());
    }

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| p(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t = RTree::new();
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert!(t.bbox().is_empty());
        t.check_invariants(true).unwrap();
    }

    #[test]
    fn insert_grows_and_splits() {
        let mut t = RTree::with_params(4);
        let pts = uniform(200, 1);
        for (i, &q) in pts.iter().enumerate() {
            t.insert(i as u32, q);
            t.check_invariants(true).unwrap();
        }
        assert_eq!(t.len(), 200);
        assert!(
            t.height() >= 3,
            "height {} too small for fanout 4",
            t.height()
        );
        let mut ids: Vec<u32> = t.iter().map(|(id, _)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..200).collect::<Vec<u32>>());
    }

    #[test]
    fn iter_returns_exact_points() {
        let mut t = RTree::new();
        let pts = uniform(50, 2);
        for (i, &q) in pts.iter().enumerate() {
            t.insert(i as u32, q);
        }
        for (id, q) in t.iter() {
            assert_eq!(q, pts[id as usize]);
        }
    }

    #[test]
    fn bulk_load_structure() {
        for n in [0usize, 1, 5, 16, 17, 100, 1000, 4357] {
            let pts = uniform(n, n as u64);
            let t = RTree::bulk_load(&pts);
            assert_eq!(t.len(), n);
            t.check_invariants(false).unwrap();
            let mut ids: Vec<u32> = t.iter().map(|(id, _)| id).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..n as u32).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn bulk_load_is_well_packed() {
        let pts = uniform(10_000, 3);
        let t = RTree::bulk_load(&pts);
        // Perfect packing would need ⌈10000/16⌉ = 625 leaves ⇒ height 4
        // (625 → 40 → 3 → 1); STR should hit exactly that.
        assert_eq!(t.height(), 4, "STR tree unexpectedly tall");
    }

    #[test]
    fn remove_returns_false_for_missing() {
        let mut t = RTree::new();
        t.insert(0, p(0.5, 0.5));
        assert!(!t.remove(0, p(0.4, 0.5)), "wrong coordinates");
        assert!(!t.remove(1, p(0.5, 0.5)), "wrong id");
        assert!(t.remove(0, p(0.5, 0.5)));
        assert!(!t.remove(0, p(0.5, 0.5)), "already removed");
        assert!(t.is_empty());
    }

    #[test]
    fn insert_then_remove_everything() {
        let mut t = RTree::with_params(5);
        let pts = uniform(300, 7);
        for (i, &q) in pts.iter().enumerate() {
            t.insert(i as u32, q);
        }
        // Remove in a scrambled order.
        let mut order: Vec<usize> = (0..300).collect();
        let mut rng = StdRng::seed_from_u64(8);
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        for (k, &i) in order.iter().enumerate() {
            assert!(t.remove(i as u32, pts[i]), "remove #{k} (id {i})");
            t.check_invariants(true).unwrap();
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn duplicate_coordinates_are_a_multiset() {
        let mut t = RTree::new();
        let q = p(0.3, 0.3);
        t.insert(1, q);
        t.insert(2, q);
        t.insert(1, q); // duplicate id as well
        assert_eq!(t.len(), 3);
        assert!(t.remove(1, q));
        assert_eq!(t.len(), 2);
        assert!(t.remove(1, q));
        assert!(!t.remove(1, q));
        assert!(t.remove(2, q));
        assert!(t.is_empty());
    }

    #[test]
    fn mixed_insert_remove_interleaving() {
        let mut t = RTree::with_params(6);
        let pts = uniform(400, 11);
        let mut alive: Vec<bool> = vec![false; 400];
        let mut rng = StdRng::seed_from_u64(12);
        let mut expected = 0usize;
        for step in 0..2000 {
            let i = rng.gen_range(0..400usize);
            if alive[i] {
                assert!(t.remove(i as u32, pts[i]), "step {step}");
                alive[i] = false;
                expected -= 1;
            } else {
                t.insert(i as u32, pts[i]);
                alive[i] = true;
                expected += 1;
            }
            if step % 100 == 0 {
                t.check_invariants(true).unwrap();
                assert_eq!(t.len(), expected);
            }
        }
        t.check_invariants(true).unwrap();
    }

    #[test]
    fn rstar_inserts_keep_invariants_and_answer_queries() {
        let pts = uniform(600, 71);
        let mut t = RTree::with_algorithm(8, SplitAlgorithm::RStar);
        for (i, &q) in pts.iter().enumerate() {
            t.insert(i as u32, q);
        }
        assert_eq!(t.len(), 600);
        assert_eq!(t.algorithm(), SplitAlgorithm::RStar);
        t.check_invariants(true).unwrap();
        let mut rng = StdRng::seed_from_u64(72);
        for _ in 0..50 {
            let c = p(rng.gen::<f64>(), rng.gen::<f64>());
            let r = Rect::from_center(c, rng.gen::<f64>() * 0.3, rng.gen::<f64>() * 0.3);
            let mut got = t.window(&r);
            got.sort_unstable();
            let want: Vec<u32> = pts
                .iter()
                .enumerate()
                .filter(|(_, q)| r.contains_point(**q))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(got, want);
        }
        // Deletion still works on an R*-built tree.
        for (i, &q) in pts.iter().enumerate().take(300) {
            assert!(t.remove(i as u32, q));
        }
        t.check_invariants(true).unwrap();
        assert_eq!(t.len(), 300);
    }

    #[test]
    fn rstar_packs_no_worse_than_quadratic() {
        // The point of R*: fewer node accesses per window query. Compare
        // total nodes visited over a fixed query workload; allow slack so
        // the assertion stays robust to heuristic noise.
        let pts = uniform(4000, 73);
        let mut quad = RTree::with_algorithm(8, SplitAlgorithm::Quadratic);
        let mut star = RTree::with_algorithm(8, SplitAlgorithm::RStar);
        for (i, &q) in pts.iter().enumerate() {
            quad.insert(i as u32, q);
            star.insert(i as u32, q);
        }
        let mut rng = StdRng::seed_from_u64(74);
        let mut quad_stats = crate::query::AccessStats::default();
        let mut star_stats = crate::query::AccessStats::default();
        for _ in 0..200 {
            let c = p(rng.gen::<f64>(), rng.gen::<f64>());
            let r = Rect::from_center(c, 0.1, 0.1);
            quad.window_with_stats(&r, &mut quad_stats);
            star.window_with_stats(&r, &mut star_stats);
        }
        assert!(
            star_stats.nodes() as f64 <= quad_stats.nodes() as f64 * 1.1,
            "R* visited {} nodes vs quadratic {}",
            star_stats.nodes(),
            quad_stats.nodes()
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        #[test]
        fn prop_rstar_invariants(seed in 0u64..3000, n in 1usize..120) {
            let pts = uniform(n, seed);
            let mut t = RTree::with_algorithm(4 + (seed % 9) as usize, SplitAlgorithm::RStar);
            for (i, &q) in pts.iter().enumerate() {
                t.insert(i as u32, q);
            }
            t.check_invariants(true).unwrap();
            proptest::prop_assert_eq!(t.len(), n);
        }

        #[test]
        fn prop_invariants_after_random_ops(seed in 0u64..3000, n in 1usize..150) {
            let pts = uniform(n, seed);
            let mut t = RTree::with_params(4 + (seed % 13) as usize);
            for (i, &q) in pts.iter().enumerate() {
                t.insert(i as u32, q);
            }
            t.check_invariants(true).unwrap();
            // Remove a prefix.
            for (i, &q) in pts.iter().enumerate().take(n / 2) {
                proptest::prop_assert!(t.remove(i as u32, q));
            }
            t.check_invariants(true).unwrap();
            proptest::prop_assert_eq!(t.len(), n - n / 2);
        }
    }
}
