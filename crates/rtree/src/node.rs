//! R-tree node arena.
//!
//! Nodes live in a flat arena and reference each other by index. Every node
//! stores a vector of [`Entry`]s; in a **leaf** (level 0) an entry's `child`
//! is the id of an indexed point and its rectangle is that point's
//! degenerate MBR, while in an **internal node** `child` is another node id
//! and the rectangle is that subtree's MBR. Using one entry type for both
//! levels keeps the Guttman split code level-agnostic.

use vaq_geom::{Point, Rect};

/// Sentinel for "no node" (e.g. the parent of the root).
pub const NO_NODE: u32 = u32::MAX;

/// One slot of a node: a bounding rectangle plus either a point id (in
/// leaves) or a child node id (in internal nodes).
#[derive(Clone, Copy, Debug)]
pub struct Entry {
    /// MBR of the referenced point or subtree.
    pub rect: Rect,
    /// Point id (leaf) or node id (internal).
    pub child: u32,
}

impl Entry {
    /// Leaf entry for point `id` at `p`.
    #[inline]
    pub fn for_point(id: u32, p: Point) -> Entry {
        Entry {
            rect: Rect::from_point(p),
            child: id,
        }
    }
}

/// An R-tree node.
#[derive(Clone, Debug)]
pub struct Node {
    /// Distance from the leaf level: 0 for leaves.
    pub level: u32,
    /// Entries; the node's own MBR is the union of their rectangles.
    pub entries: Vec<Entry>,
}

impl Node {
    /// Creates an empty node at `level`.
    pub fn new(level: u32) -> Node {
        Node {
            level,
            entries: Vec::new(),
        }
    }

    /// `true` for leaf nodes.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// The union of all entry rectangles ([`Rect::EMPTY`] when empty).
    pub fn mbr(&self) -> Rect {
        self.entries
            .iter()
            .fold(Rect::EMPTY, |acc, e| acc.union(&e.rect))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_entry_is_degenerate_rect() {
        let e = Entry::for_point(7, Point::new(2.0, 3.0));
        assert_eq!(e.child, 7);
        assert_eq!(e.rect.min, Point::new(2.0, 3.0));
        assert_eq!(e.rect.max, Point::new(2.0, 3.0));
        assert_eq!(e.rect.area(), 0.0);
    }

    #[test]
    fn node_mbr_unions_entries() {
        let mut n = Node::new(0);
        assert!(n.mbr().is_empty());
        n.entries.push(Entry::for_point(0, Point::new(0.0, 0.0)));
        n.entries.push(Entry::for_point(1, Point::new(2.0, 1.0)));
        let mbr = n.mbr();
        assert_eq!(mbr.min, Point::new(0.0, 0.0));
        assert_eq!(mbr.max, Point::new(2.0, 1.0));
        assert!(n.is_leaf());
        assert!(!Node::new(1).is_leaf());
    }
}
