//! R-tree queries: window (range), nearest-neighbour and k-nearest-
//! neighbour, each with an optional access-statistics sink.
//!
//! The statistics mirror what the reproduced paper measures: the filtering
//! cost of the traditional area query is the number of index nodes touched
//! plus the candidates produced, and the refinement cost is per-candidate
//! geometry validation, which the engine layer counts separately.

use crate::tree::RTree;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use vaq_geom::{Point, Rect};

/// Counters describing the index work performed by one query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Internal (non-leaf) nodes visited.
    pub internal_nodes: u64,
    /// Leaf nodes visited.
    pub leaf_nodes: u64,
    /// Leaf entries tested against the query predicate.
    pub leaf_entries: u64,
}

impl AccessStats {
    /// Total nodes visited (internal + leaf).
    pub fn nodes(&self) -> u64 {
        self.internal_nodes + self.leaf_nodes
    }

    /// Accumulates another query's counters into this one.
    pub fn absorb(&mut self, other: &AccessStats) {
        self.internal_nodes += other.internal_nodes;
        self.leaf_nodes += other.leaf_nodes;
        self.leaf_entries += other.leaf_entries;
    }
}

/// Max-heap item ordered by **smallest** distance first (reversed).
struct HeapItem {
    dist_sq: f64,
    /// Node id, or point id when `is_point`.
    id: u32,
    is_point: bool,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.dist_sq == other.dist_sq
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the closest first.
        other.dist_sq.total_cmp(&self.dist_sq)
    }
}

impl RTree {
    /// Returns the ids of all points inside `rect` (closed: boundary points
    /// are reported).
    pub fn window(&self, rect: &Rect) -> Vec<u32> {
        let mut stats = AccessStats::default();
        self.window_with_stats(rect, &mut stats)
    }

    /// [`RTree::window`] that also accumulates access statistics.
    pub fn window_with_stats(&self, rect: &Rect, stats: &mut AccessStats) -> Vec<u32> {
        let mut out = Vec::new();
        if self.is_empty() {
            return out;
        }
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            let node = self.node(n);
            if node.is_leaf() {
                stats.leaf_nodes += 1;
                stats.leaf_entries += node.entries.len() as u64;
                for e in &node.entries {
                    if rect.contains_point(e.rect.min) {
                        out.push(e.child);
                    }
                }
            } else {
                stats.internal_nodes += 1;
                for e in &node.entries {
                    if rect.intersects(&e.rect) {
                        stack.push(e.child);
                    }
                }
            }
        }
        out
    }

    /// Visits every point inside `rect`, streaming instead of collecting.
    pub fn window_for_each<F: FnMut(u32, Point)>(&self, rect: &Rect, mut f: F) {
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            let node = self.node(n);
            if node.is_leaf() {
                for e in &node.entries {
                    if rect.contains_point(e.rect.min) {
                        f(e.child, e.rect.min);
                    }
                }
            } else {
                for e in &node.entries {
                    if rect.intersects(&e.rect) {
                        stack.push(e.child);
                    }
                }
            }
        }
    }

    /// Number of points inside `rect` without materialising them.
    pub fn window_count(&self, rect: &Rect) -> usize {
        let mut n = 0;
        self.window_for_each(rect, |_, _| n += 1);
        n
    }

    /// The nearest indexed point to `q` as `(id, squared distance)`, or
    /// `None` for an empty tree. Best-first (branch-and-bound) search.
    pub fn nearest(&self, q: Point) -> Option<(u32, f64)> {
        let mut stats = AccessStats::default();
        self.nearest_with_stats(q, &mut stats)
    }

    /// [`RTree::nearest`] that also accumulates access statistics.
    pub fn nearest_with_stats(&self, q: Point, stats: &mut AccessStats) -> Option<(u32, f64)> {
        self.k_nearest_with_stats(q, 1, stats).into_iter().next()
    }

    /// The `k` nearest points to `q`, closest first, as `(id, squared
    /// distance)` pairs. Returns fewer when the tree holds fewer points.
    /// Ties at the k-th distance are broken arbitrarily.
    pub fn k_nearest(&self, q: Point, k: usize) -> Vec<(u32, f64)> {
        let mut stats = AccessStats::default();
        self.k_nearest_with_stats(q, k, &mut stats)
    }

    /// [`RTree::k_nearest`] that also accumulates access statistics.
    pub fn k_nearest_with_stats(
        &self,
        q: Point,
        k: usize,
        stats: &mut AccessStats,
    ) -> Vec<(u32, f64)> {
        let mut out = Vec::with_capacity(k.min(self.len()));
        if self.is_empty() || k == 0 {
            return out;
        }
        let mut heap = BinaryHeap::new();
        heap.push(HeapItem {
            dist_sq: self.node(self.root).mbr().min_dist_sq(q),
            id: self.root,
            is_point: false,
        });
        while let Some(item) = heap.pop() {
            if item.is_point {
                out.push((item.id, item.dist_sq));
                if out.len() == k {
                    break;
                }
                continue;
            }
            let node = self.node(item.id);
            if node.is_leaf() {
                stats.leaf_nodes += 1;
                stats.leaf_entries += node.entries.len() as u64;
                for e in &node.entries {
                    heap.push(HeapItem {
                        dist_sq: e.rect.min.dist_sq(q),
                        id: e.child,
                        is_point: true,
                    });
                }
            } else {
                stats.internal_nodes += 1;
                for e in &node.entries {
                    heap.push(HeapItem {
                        dist_sq: e.rect.min_dist_sq(q),
                        id: e.child,
                        is_point: false,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| p(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn brute_window(pts: &[Point], r: &Rect) -> Vec<u32> {
        let mut v: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, q)| r.contains_point(**q))
            .map(|(i, _)| i as u32)
            .collect();
        v.sort_unstable();
        v
    }

    fn brute_knn(pts: &[Point], q: Point, k: usize) -> Vec<f64> {
        let mut d: Vec<f64> = pts.iter().map(|s| s.dist_sq(q)).collect();
        d.sort_by(f64::total_cmp);
        d.truncate(k);
        d
    }

    #[test]
    fn window_on_empty_tree() {
        let t = RTree::new();
        assert!(t.window(&Rect::new(p(0.0, 0.0), p(1.0, 1.0))).is_empty());
        assert_eq!(t.nearest(p(0.5, 0.5)), None);
        assert!(t.k_nearest(p(0.5, 0.5), 3).is_empty());
    }

    #[test]
    fn window_matches_brute_force_incremental_and_bulk() {
        let pts = uniform(800, 21);
        let mut inc = RTree::new();
        for (i, &q) in pts.iter().enumerate() {
            inc.insert(i as u32, q);
        }
        let bulk = RTree::bulk_load(&pts);
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..100 {
            let c = p(rng.gen::<f64>(), rng.gen::<f64>());
            let r = Rect::from_center(c, rng.gen::<f64>() * 0.3, rng.gen::<f64>() * 0.3);
            let want = brute_window(&pts, &r);
            let mut got_inc = inc.window(&r);
            got_inc.sort_unstable();
            let mut got_bulk = bulk.window(&r);
            got_bulk.sort_unstable();
            assert_eq!(got_inc, want);
            assert_eq!(got_bulk, want);
            assert_eq!(bulk.window_count(&r), want.len());
        }
    }

    #[test]
    fn window_is_closed_on_boundary() {
        let mut t = RTree::new();
        t.insert(0, p(1.0, 1.0)); // corner
        t.insert(1, p(0.5, 1.0)); // edge
        t.insert(2, p(1.0 + 1e-12, 0.5)); // just outside
        let r = Rect::new(p(0.0, 0.0), p(1.0, 1.0));
        let mut got = t.window(&r);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = uniform(600, 23);
        let t = RTree::bulk_load(&pts);
        let mut rng = StdRng::seed_from_u64(24);
        for _ in 0..200 {
            let q = p(rng.gen::<f64>() * 1.5 - 0.25, rng.gen::<f64>() * 1.5 - 0.25);
            let (_, d) = t.nearest(q).unwrap();
            let want = brute_knn(&pts, q, 1)[0];
            assert_eq!(d, want, "q = {q}");
        }
    }

    #[test]
    fn k_nearest_matches_brute_force_distances() {
        let pts = uniform(300, 25);
        let t = RTree::bulk_load(&pts);
        let mut rng = StdRng::seed_from_u64(26);
        for _ in 0..50 {
            let q = p(rng.gen::<f64>(), rng.gen::<f64>());
            let k = rng.gen_range(1..20usize);
            let got: Vec<f64> = t.k_nearest(q, k).iter().map(|&(_, d)| d).collect();
            let want = brute_knn(&pts, q, k);
            assert_eq!(got, want);
            // Closest-first ordering.
            assert!(got.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn k_larger_than_len_returns_everything() {
        let pts = uniform(7, 27);
        let t = RTree::bulk_load(&pts);
        let got = t.k_nearest(p(0.5, 0.5), 100);
        assert_eq!(got.len(), 7);
    }

    #[test]
    fn stats_reflect_pruning() {
        let pts = uniform(4096, 29);
        let t = RTree::bulk_load(&pts);
        // A tiny window should touch a small fraction of the tree.
        let mut small = AccessStats::default();
        t.window_with_stats(&Rect::from_center(p(0.5, 0.5), 0.02, 0.02), &mut small);
        // The full window touches every node.
        let mut full = AccessStats::default();
        t.window_with_stats(&Rect::new(p(-1.0, -1.0), p(2.0, 2.0)), &mut full);
        assert!(
            small.nodes() * 10 < full.nodes(),
            "small {small:?} vs full {full:?}"
        );
        assert_eq!(full.leaf_entries, 4096);
        // NN should touch roughly a root-to-leaf path worth of nodes.
        let mut nn = AccessStats::default();
        t.nearest_with_stats(p(0.3, 0.7), &mut nn).unwrap();
        assert!(nn.nodes() < 64, "NN stats {nn:?}");
        // absorb accumulates.
        let mut acc = AccessStats::default();
        acc.absorb(&small);
        acc.absorb(&full);
        assert_eq!(acc.leaf_entries, small.leaf_entries + full.leaf_entries);
    }

    #[test]
    fn queries_after_heavy_deletion() {
        let pts = uniform(500, 31);
        let mut t = RTree::with_params(8);
        for (i, &q) in pts.iter().enumerate() {
            t.insert(i as u32, q);
        }
        for (i, &q) in pts.iter().enumerate() {
            if i % 3 != 0 {
                assert!(t.remove(i as u32, q));
            }
        }
        let alive: Vec<Point> = pts.iter().copied().step_by(3).collect();
        let r = Rect::new(p(0.2, 0.2), p(0.8, 0.8));
        let mut got = t.window(&r);
        got.sort_unstable();
        let want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(i, q)| i % 3 == 0 && r.contains_point(**q))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(got, want);
        let (_, d) = t.nearest(p(0.5, 0.5)).unwrap();
        let want_d = alive
            .iter()
            .map(|s| s.dist_sq(p(0.5, 0.5)))
            .fold(f64::INFINITY, f64::min);
        assert_eq!(d, want_d);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        #[test]
        fn prop_window_and_nn_match_brute(seed in 0u64..3000, n in 1usize..200) {
            let pts = uniform(n, seed);
            let t = RTree::bulk_load(&pts);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x55AA);
            for _ in 0..8 {
                let c = p(rng.gen::<f64>(), rng.gen::<f64>());
                let r = Rect::from_center(c, rng.gen::<f64>() * 0.5, rng.gen::<f64>() * 0.5);
                let mut got = t.window(&r);
                got.sort_unstable();
                proptest::prop_assert_eq!(got, brute_window(&pts, &r));
                let q = p(rng.gen::<f64>(), rng.gen::<f64>());
                let (_, d) = t.nearest(q).unwrap();
                proptest::prop_assert_eq!(d, brute_knn(&pts, q, 1)[0]);
            }
        }
    }
}
