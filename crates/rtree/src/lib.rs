//! # vaq-rtree — R-tree spatial index
//!
//! A from-scratch main-memory R-tree over 2-D points, built for the
//! reproduction of *Area Queries Based on Voronoi Diagrams* (ICDE 2020).
//! It plays both roles the paper assigns to an index:
//!
//! * the **traditional baseline**'s filter step is a window query with the
//!   query area's MBR ([`RTree::window`] /
//!   [`RTree::window_with_stats`]);
//! * the **Voronoi method**'s seed lookup is a nearest-neighbour query
//!   ([`RTree::nearest`]) — the paper uses the same R-tree "for fairness".
//!
//! Construction is either incremental ([`RTree::insert`], Guttman with
//! quadratic split) or bulk ([`RTree::bulk_load`], sort-tile-recursive).
//! Deletion ([`RTree::remove`]) condenses underflowing nodes and
//! re-inserts orphaned points. Every query has a `_with_stats` variant
//! feeding the [`AccessStats`] counters the benchmark harness reports.
//!
//! ## Example
//!
//! ```
//! use vaq_geom::{Point, Rect};
//! use vaq_rtree::RTree;
//!
//! let pts = vec![
//!     Point::new(0.1, 0.1),
//!     Point::new(0.9, 0.2),
//!     Point::new(0.5, 0.7),
//! ];
//! let tree = RTree::bulk_load(&pts);
//! let mut hits = tree.window(&Rect::new(Point::new(0.0, 0.0), Point::new(0.6, 1.0)));
//! hits.sort_unstable();
//! assert_eq!(hits, vec![0, 2]);
//! let (nearest, _d2) = tree.nearest(Point::new(0.8, 0.3)).unwrap();
//! assert_eq!(nearest, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod node;
pub mod query;
pub mod rstar;
pub mod tree;

pub use query::AccessStats;
pub use tree::{RTree, RTreeRaw, SplitAlgorithm, DEFAULT_MAX_ENTRIES};
