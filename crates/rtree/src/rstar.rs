//! R\*-tree insertion heuristics (Beckmann, Kriegel, Schneider, Seeger,
//! SIGMOD 1990), selectable per tree via
//! [`SplitAlgorithm`](crate::tree::SplitAlgorithm).
//!
//! Three ingredients distinguish R\* from Guttman's original:
//!
//! 1. **ChooseSubtree** descends into the child whose rectangle needs the
//!    least *overlap* enlargement at the level above the leaves (least
//!    *area* enlargement higher up, like Guttman).
//! 2. **Forced reinsertion**: the first time a node overflows at each
//!    level during one insertion, the `p ≈ 30 %` entries furthest from the
//!    node's centre are removed and re-inserted instead of splitting —
//!    this retro-fits the tree towards a better global shape.
//! 3. **The R\* split** picks the split axis by minimum total margin over
//!    all legal distributions of a sorted entry list, then the
//!    distribution with minimum overlap (ties: minimum total area).
//!
//! Only the heuristics live here; the tree plumbing stays in
//! [`crate::tree`].

use crate::node::{Entry, Node};
use vaq_geom::Rect;

/// Fraction of a node's entries removed by forced reinsertion.
pub(crate) const REINSERT_FRACTION: f64 = 0.30;

/// R\* `ChooseSubtree` for the level immediately above the leaves:
/// least overlap enlargement, ties by least area enlargement, then least
/// area. `O(M²)` in the node fan-out.
pub(crate) fn choose_subtree_overlap(node: &Node, r: &Rect) -> usize {
    let mut best = 0;
    let mut best_overlap = f64::INFINITY;
    let mut best_enlarge = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for (i, e) in node.entries.iter().enumerate() {
        let grown = e.rect.union(r);
        let mut overlap_delta = 0.0;
        for (j, f) in node.entries.iter().enumerate() {
            if i == j {
                continue;
            }
            overlap_delta +=
                intersection_area(&grown, &f.rect) - intersection_area(&e.rect, &f.rect);
        }
        let enlarge = e.rect.enlargement(r);
        let area = e.rect.area();
        if (overlap_delta, enlarge, area) < (best_overlap, best_enlarge, best_area) {
            best = i;
            best_overlap = overlap_delta;
            best_enlarge = enlarge;
            best_area = area;
        }
    }
    best
}

fn intersection_area(a: &Rect, b: &Rect) -> f64 {
    a.intersection(b).map_or(0.0, |i| i.area())
}

/// The entries to re-insert when `node` first overflows at its level:
/// the `p` entries whose centres are furthest from the node's MBR centre,
/// ordered closest-first (R\*'s "close reinsert").
pub(crate) fn reinsert_victims(node: &mut Node, max_entries: usize) -> Vec<Entry> {
    let p = ((max_entries as f64 * REINSERT_FRACTION).ceil() as usize).max(1);
    let centre = node.mbr().center();
    node.entries.sort_by(|a, b| {
        a.rect
            .center()
            .dist_sq(centre)
            .total_cmp(&b.rect.center().dist_sq(centre))
    });
    let keep = node.entries.len() - p;
    // The tail of the ascending sort is the victim set, already in
    // closest-first order — exactly R*'s "close reinsert".
    node.entries.split_off(keep)
}

/// The R\* topological split: returns the two groups.
pub(crate) fn rstar_split(entries: Vec<Entry>, min_fill: usize) -> (Vec<Entry>, Vec<Entry>) {
    debug_assert!(entries.len() >= 2 * min_fill);
    let m = entries.len();
    let k_max = m - 2 * min_fill + 1; // number of legal distributions per sort

    // Choose the split axis: the one whose sorted distributions have the
    // smallest total margin (perimeter) sum.
    let mut best_axis = 0;
    let mut best_margin = f64::INFINITY;
    for axis in 0..2 {
        let sorted = sorted_by_axis(&entries, axis);
        let (prefix, suffix) = boundary_rects(&sorted);
        let mut margin_sum = 0.0;
        for k in 0..k_max {
            let split_at = min_fill + k;
            margin_sum += prefix[split_at - 1].perimeter() + suffix[split_at].perimeter();
        }
        if margin_sum < best_margin {
            best_margin = margin_sum;
            best_axis = axis;
        }
    }

    // Along the chosen axis, pick the distribution with minimal overlap
    // (ties: minimal total area).
    let sorted = sorted_by_axis(&entries, best_axis);
    let (prefix, suffix) = boundary_rects(&sorted);
    let mut best_split = min_fill;
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for k in 0..k_max {
        let split_at = min_fill + k;
        let r1 = prefix[split_at - 1];
        let r2 = suffix[split_at];
        let key = (intersection_area(&r1, &r2), r1.area() + r2.area());
        if key < best_key {
            best_key = key;
            best_split = split_at;
        }
    }
    let mut g1 = sorted;
    let g2 = g1.split_off(best_split);
    (g1, g2)
}

/// Entries sorted by `(min, max)` along the axis.
fn sorted_by_axis(entries: &[Entry], axis: usize) -> Vec<Entry> {
    let mut v = entries.to_vec();
    v.sort_by(|a, b| {
        let (amin, amax, bmin, bmax) = if axis == 0 {
            (a.rect.min.x, a.rect.max.x, b.rect.min.x, b.rect.max.x)
        } else {
            (a.rect.min.y, a.rect.max.y, b.rect.min.y, b.rect.max.y)
        };
        amin.total_cmp(&bmin).then(amax.total_cmp(&bmax))
    });
    v
}

/// `prefix[i]` = MBR of `sorted[..=i]`, `suffix[i]` = MBR of `sorted[i..]`.
fn boundary_rects(sorted: &[Entry]) -> (Vec<Rect>, Vec<Rect>) {
    let m = sorted.len();
    let mut prefix = Vec::with_capacity(m);
    let mut acc = Rect::EMPTY;
    for e in sorted {
        acc = acc.union(&e.rect);
        prefix.push(acc);
    }
    let mut suffix = vec![Rect::EMPTY; m];
    let mut acc = Rect::EMPTY;
    for i in (0..m).rev() {
        acc = acc.union(&sorted[i].rect);
        suffix[i] = acc;
    }
    (prefix, suffix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_geom::Point;

    fn entry(id: u32, x: f64, y: f64) -> Entry {
        Entry::for_point(id, Point::new(x, y))
    }

    #[test]
    fn split_separates_two_clusters_cleanly() {
        // Two obvious clusters along x; the R* split must not mix them.
        // Give the points vertical spread as well — fully collinear input
        // has zero overlap *and* zero area for every distribution, leaving
        // nothing to discriminate on.
        let mut entries = Vec::new();
        for i in 0..5 {
            entries.push(entry(i, f64::from(i) * 0.01, 0.1 * f64::from(i)));
            entries.push(entry(
                100 + i,
                10.0 + f64::from(i) * 0.01,
                0.1 * f64::from(i),
            ));
        }
        let (g1, g2) = rstar_split(entries, 3);
        let left_ids: Vec<u32> = g1.iter().map(|e| e.child).collect();
        let right_ids: Vec<u32> = g2.iter().map(|e| e.child).collect();
        assert!(
            left_ids.iter().all(|&i| i < 100) && right_ids.iter().all(|&i| i >= 100)
                || left_ids.iter().all(|&i| i >= 100) && right_ids.iter().all(|&i| i < 100),
            "clusters mixed: {left_ids:?} | {right_ids:?}"
        );
        // Disjoint groups have zero overlap.
        let r1 = g1.iter().fold(Rect::EMPTY, |a, e| a.union(&e.rect));
        let r2 = g2.iter().fold(Rect::EMPTY, |a, e| a.union(&e.rect));
        assert!(!r1.intersects(&r2));
    }

    #[test]
    fn split_respects_min_fill() {
        let entries: Vec<Entry> = (0..9)
            .map(|i| entry(i, f64::from(i), f64::from(i % 3)))
            .collect();
        let (g1, g2) = rstar_split(entries, 4);
        assert!(g1.len() >= 4 && g2.len() >= 4);
        assert_eq!(g1.len() + g2.len(), 9);
    }

    #[test]
    fn victims_are_the_furthest_entries() {
        let mut node = Node::new(0);
        for i in 0..10 {
            node.entries.push(entry(i, f64::from(i), 0.0)); // centre ≈ 4.5
        }
        let victims = reinsert_victims(&mut node, 10);
        assert_eq!(victims.len(), 3); // ceil(10 × 0.3)
        assert_eq!(node.entries.len(), 7);
        // Victims are from the extremes (0, 9, 8 or 1 — furthest from 4.5).
        for v in &victims {
            let d = (v.rect.min.x - 4.5).abs();
            assert!(d >= 2.5, "victim {} too central", v.child);
        }
    }

    #[test]
    fn choose_subtree_prefers_zero_overlap_growth() {
        // Two children: inserting into the left one would make it overlap
        // the right one; a third child can absorb the point with no new
        // overlap. The R* rule must pick it.
        let mut node = Node::new(1);
        node.entries.push(Entry {
            rect: Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
            child: 0,
        });
        node.entries.push(Entry {
            rect: Rect::new(Point::new(1.1, 0.0), Point::new(2.0, 1.0)),
            child: 1,
        });
        node.entries.push(Entry {
            rect: Rect::new(Point::new(0.0, 1.2), Point::new(2.0, 2.0)),
            child: 2,
        });
        // Point between child 0 and child 1 horizontally, nearer child 2's
        // band vertically: growing 0 or 1 would create overlap with each
        // other; growing 2 creates none.
        let r = Rect::from_point(Point::new(1.05, 1.15));
        assert_eq!(choose_subtree_overlap(&node, &r), 2);
    }
}
