//! # vaq-quadtree — point-region (PR) quadtree
//!
//! A PR quadtree over 2-D points, used by the reproduction of *Area Queries
//! Based on Voronoi Diagrams* (ICDE 2020) as an **ablation baseline** for
//! the traditional method's window-query filter (the paper's related work
//! lists quadtrees among the classical spatial indexes).
//!
//! A PR quadtree recursively subdivides a fixed square region into four
//! quadrants; points live in leaf buckets of bounded capacity. Unlike the
//! R-tree, the decomposition is space-driven, so duplicate points cannot be
//! separated by subdivision — leaves at the maximum depth are allowed to
//! overflow instead.
//!
//! ## Example
//!
//! ```
//! use vaq_geom::{Point, Rect};
//! use vaq_quadtree::Quadtree;
//!
//! let region = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
//! let mut qt = Quadtree::new(region);
//! qt.insert(0, Point::new(0.1, 0.1)).unwrap();
//! qt.insert(1, Point::new(0.9, 0.2)).unwrap();
//! qt.insert(2, Point::new(0.5, 0.7)).unwrap();
//! let mut hits = qt.window(&Rect::new(Point::new(0.0, 0.0), Point::new(0.6, 1.0)));
//! hits.sort_unstable();
//! assert_eq!(hits, vec![0, 2]);
//! let (nn, _d2) = qt.nearest(Point::new(0.8, 0.3)).unwrap();
//! assert_eq!(nn, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use vaq_geom::{Point, Rect};

/// Default leaf bucket capacity.
pub const DEFAULT_CAPACITY: usize = 16;

/// Default maximum subdivision depth. With 30 levels the smallest quadrant
/// side is `2⁻³⁰` of the region — beyond that duplicates-in-a-bucket is the
/// sane behaviour.
pub const DEFAULT_MAX_DEPTH: usize = 30;

/// Error returned when inserting a point outside the tree's fixed region.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OutOfRegion {
    /// The rejected point.
    pub point: Point,
}

impl std::fmt::Display for OutOfRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "point {} lies outside the quadtree region", self.point)
    }
}

impl std::error::Error for OutOfRegion {}

enum Node {
    /// Bucket of `(id, point)` pairs.
    Leaf(Vec<(u32, Point)>),
    /// Child node ids in quadrant order: [SW, SE, NW, NE].
    Internal([u32; 4]),
}

/// A PR quadtree over a fixed square region.
pub struct Quadtree {
    nodes: Vec<Node>,
    region: Rect,
    capacity: usize,
    max_depth: usize,
    len: usize,
}

/// The quadrant of `p` within the rect centred at `(cx, cy)`:
/// SW=0, SE=1, NW=2, NE=3. Points exactly on a split line go east/north
/// (the `>=` side), which keeps insert and query decisions consistent.
#[inline]
fn quadrant(cx: f64, cy: f64, p: Point) -> usize {
    usize::from(p.x >= cx) + 2 * usize::from(p.y >= cy)
}

/// The sub-rectangle of quadrant `q` of `r`.
fn child_rect(r: &Rect, q: usize) -> Rect {
    let c = r.center();
    match q {
        0 => Rect::new(r.min, c),
        1 => Rect::new(Point::new(c.x, r.min.y), Point::new(r.max.x, c.y)),
        2 => Rect::new(Point::new(r.min.x, c.y), Point::new(c.x, r.max.y)),
        _ => Rect::new(c, r.max),
    }
}

impl Quadtree {
    /// Creates an empty tree covering `region` with default parameters.
    pub fn new(region: Rect) -> Quadtree {
        Quadtree::with_params(region, DEFAULT_CAPACITY, DEFAULT_MAX_DEPTH)
    }

    /// Creates an empty tree with explicit bucket capacity and depth limit.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or the region is empty.
    pub fn with_params(region: Rect, capacity: usize, max_depth: usize) -> Quadtree {
        assert!(capacity > 0, "capacity must be positive");
        assert!(!region.is_empty(), "region must be non-empty");
        Quadtree {
            nodes: vec![Node::Leaf(Vec::new())],
            region,
            capacity,
            max_depth,
            len: 0,
        }
    }

    /// Builds a tree over `points` (ids `0..n`), sizing the region to their
    /// bounding box (expanded slightly so boundary points are interior).
    pub fn bulk_load(points: &[Point]) -> Quadtree {
        let bbox = if points.is_empty() {
            Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
        } else {
            let b = Rect::from_points(points.iter().copied());
            let margin = (b.width().max(b.height()) * 1e-9).max(1e-12);
            b.expand(margin)
        };
        let mut qt = Quadtree::new(bbox);
        for (i, &p) in points.iter().enumerate() {
            qt.insert(i as u32, p)
                .expect("bbox contains every input point");
        }
        qt
    }

    /// The fixed region covered by the tree.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts point `p` with caller id `id`.
    ///
    /// # Errors
    ///
    /// [`OutOfRegion`] when `p` is outside the tree's fixed region.
    pub fn insert(&mut self, id: u32, p: Point) -> Result<(), OutOfRegion> {
        if !self.region.contains_point(p) {
            return Err(OutOfRegion { point: p });
        }
        let mut node = 0u32;
        let mut rect = self.region;
        let mut depth = 0usize;
        loop {
            match &mut self.nodes[node as usize] {
                Node::Internal(children) => {
                    let c = rect.center();
                    let q = quadrant(c.x, c.y, p);
                    node = children[q];
                    rect = child_rect(&rect, q);
                    depth += 1;
                }
                Node::Leaf(bucket) => {
                    bucket.push((id, p));
                    self.len += 1;
                    if bucket.len() > self.capacity && depth < self.max_depth {
                        self.split_leaf(node, &rect);
                    }
                    return Ok(());
                }
            }
        }
    }

    /// Splits an over-capacity leaf into four children, redistributing its
    /// bucket. If every point lands in one child (duplicates), the child
    /// will split again on the next insert until `max_depth` stops it.
    fn split_leaf(&mut self, node: u32, rect: &Rect) {
        let bucket = match std::mem::replace(&mut self.nodes[node as usize], Node::Internal([0; 4]))
        {
            Node::Leaf(b) => b,
            // vaq-lint: allow(panic-hygiene) -- the only caller just
            // matched this node as an over-capacity leaf.
            Node::Internal(_) => unreachable!("split_leaf called on internal node"),
        };
        let base = self.nodes.len() as u32;
        for _ in 0..4 {
            self.nodes.push(Node::Leaf(Vec::new()));
        }
        let c = rect.center();
        for (id, p) in bucket {
            let q = quadrant(c.x, c.y, p);
            match &mut self.nodes[(base + q as u32) as usize] {
                Node::Leaf(b) => b.push((id, p)),
                // vaq-lint: allow(panic-hygiene) -- the four children were
                // pushed as empty leaves in the loop above and nothing has
                // replaced them since.
                Node::Internal(_) => unreachable!("children are fresh leaves"),
            }
        }
        self.nodes[node as usize] = Node::Internal([base, base + 1, base + 2, base + 3]);
    }

    /// Ids of all points inside the closed rectangle `rect`.
    pub fn window(&self, rect: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        self.window_for_each(rect, |id| out.push(id));
        out
    }

    /// Number of points inside `rect` without materialising them.
    pub fn window_count(&self, rect: &Rect) -> usize {
        let mut n = 0usize;
        self.window_for_each(rect, |_| n += 1);
        n
    }

    /// Visits the id of every point inside `rect`.
    pub fn window_for_each<F: FnMut(u32)>(&self, rect: &Rect, mut f: F) {
        let mut stack = vec![(0u32, self.region)];
        while let Some((node, r)) = stack.pop() {
            if !rect.intersects(&r) {
                continue;
            }
            match &self.nodes[node as usize] {
                Node::Leaf(bucket) => {
                    for &(id, p) in bucket {
                        if rect.contains_point(p) {
                            f(id);
                        }
                    }
                }
                Node::Internal(children) => {
                    for (q, &ch) in children.iter().enumerate() {
                        stack.push((ch, child_rect(&r, q)));
                    }
                }
            }
        }
    }

    /// The nearest point to `q` as `(id, squared distance)`, or `None` for
    /// an empty tree. Best-first search over quadrants.
    pub fn nearest(&self, q: Point) -> Option<(u32, f64)> {
        if self.is_empty() {
            return None;
        }
        struct Item {
            d: f64,
            node: u32,
            rect: Rect,
        }
        impl PartialEq for Item {
            fn eq(&self, o: &Self) -> bool {
                self.d == o.d
            }
        }
        impl Eq for Item {}
        impl PartialOrd for Item {
            fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
                Some(self.cmp(o))
            }
        }
        impl Ord for Item {
            fn cmp(&self, o: &Self) -> Ordering {
                o.d.total_cmp(&self.d) // min-heap
            }
        }
        let mut best: Option<(u32, f64)> = None;
        let mut heap = BinaryHeap::new();
        heap.push(Item {
            d: self.region.min_dist_sq(q),
            node: 0,
            rect: self.region,
        });
        while let Some(Item { d, node, rect }) = heap.pop() {
            if let Some((_, bd)) = best {
                if d >= bd {
                    break;
                }
            }
            match &self.nodes[node as usize] {
                Node::Leaf(bucket) => {
                    for &(id, p) in bucket {
                        let pd = p.dist_sq(q);
                        if best.is_none_or(|(_, bd)| pd < bd) {
                            best = Some((id, pd));
                        }
                    }
                }
                Node::Internal(children) => {
                    for (qi, &ch) in children.iter().enumerate() {
                        let cr = child_rect(&rect, qi);
                        heap.push(Item {
                            d: cr.min_dist_sq(q),
                            node: ch,
                            rect: cr,
                        });
                    }
                }
            }
        }
        best
    }

    /// Verifies that every point is stored in the leaf whose region
    /// contains it and that internal nodes have no buckets. Test helper.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut count = 0usize;
        let mut stack = vec![(0u32, self.region, 0usize)];
        while let Some((node, r, depth)) = stack.pop() {
            match &self.nodes[node as usize] {
                Node::Leaf(bucket) => {
                    count += bucket.len();
                    if bucket.len() > self.capacity && depth < self.max_depth {
                        return Err(format!(
                            "leaf over capacity ({}) above max depth",
                            bucket.len()
                        ));
                    }
                    for &(id, p) in bucket {
                        // A point on a split boundary belongs to the >= side;
                        // containment in the closed rect is the weaker check
                        // that must always hold.
                        if !r.contains_point(p) {
                            return Err(format!("point {id} at {p} outside its leaf rect"));
                        }
                    }
                }
                Node::Internal(children) => {
                    for (q, &ch) in children.iter().enumerate() {
                        stack.push((ch, child_rect(&r, q), depth + 1));
                    }
                }
            }
        }
        if count != self.len {
            return Err(format!("len {} but {} stored points", self.len, count));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| p(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn brute_window(pts: &[Point], r: &Rect) -> Vec<u32> {
        let mut v: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, q)| r.contains_point(**q))
            .map(|(i, _)| i as u32)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn reject_out_of_region() {
        let mut qt = Quadtree::new(Rect::new(p(0.0, 0.0), p(1.0, 1.0)));
        assert!(qt.insert(0, p(1.5, 0.5)).is_err());
        assert!(qt.insert(0, p(0.5, 0.5)).is_ok());
        assert_eq!(qt.len(), 1);
    }

    #[test]
    fn quadrant_assignment_on_boundaries() {
        // Points exactly on the centre lines go to the >= side.
        assert_eq!(quadrant(0.5, 0.5, p(0.5, 0.5)), 3);
        assert_eq!(quadrant(0.5, 0.5, p(0.5, 0.0)), 1);
        assert_eq!(quadrant(0.5, 0.5, p(0.0, 0.5)), 2);
        assert_eq!(quadrant(0.5, 0.5, p(0.0, 0.0)), 0);
    }

    #[test]
    fn window_matches_brute_force() {
        let pts = uniform(600, 51);
        let qt = Quadtree::bulk_load(&pts);
        qt.check_invariants().unwrap();
        let mut rng = StdRng::seed_from_u64(52);
        for _ in 0..100 {
            let c = p(rng.gen::<f64>(), rng.gen::<f64>());
            let r = Rect::from_center(c, rng.gen::<f64>() * 0.4, rng.gen::<f64>() * 0.4);
            let mut got = qt.window(&r);
            got.sort_unstable();
            assert_eq!(got, brute_window(&pts, &r));
            assert_eq!(qt.window_count(&r), got.len());
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = uniform(400, 53);
        let qt = Quadtree::bulk_load(&pts);
        let mut rng = StdRng::seed_from_u64(54);
        for _ in 0..200 {
            let q = p(rng.gen::<f64>() * 1.4 - 0.2, rng.gen::<f64>() * 1.4 - 0.2);
            let (_, d) = qt.nearest(q).unwrap();
            let want = pts
                .iter()
                .map(|s| s.dist_sq(q))
                .fold(f64::INFINITY, f64::min);
            assert_eq!(d, want, "q = {q}");
        }
    }

    #[test]
    fn many_duplicates_do_not_split_forever() {
        let mut qt = Quadtree::with_params(Rect::new(p(0.0, 0.0), p(1.0, 1.0)), 2, 8);
        for i in 0..100 {
            qt.insert(i, p(0.25, 0.25)).unwrap();
        }
        qt.check_invariants().unwrap();
        assert_eq!(qt.len(), 100);
        assert_eq!(
            qt.window_count(&Rect::from_center(p(0.25, 0.25), 0.01, 0.01)),
            100
        );
    }

    #[test]
    fn points_on_split_lines() {
        // Centre of the region and quadrant corners: exercise >= routing.
        let mut qt = Quadtree::with_params(Rect::new(p(0.0, 0.0), p(1.0, 1.0)), 1, 10);
        let pts = [
            p(0.5, 0.5),
            p(0.5, 0.25),
            p(0.25, 0.5),
            p(0.75, 0.5),
            p(0.5, 0.75),
        ];
        for (i, &q) in pts.iter().enumerate() {
            qt.insert(i as u32, q).unwrap();
        }
        qt.check_invariants().unwrap();
        let r = Rect::new(p(0.5, 0.0), p(1.0, 1.0));
        let mut got = qt.window(&r);
        got.sort_unstable();
        assert_eq!(got, brute_window(&pts, &r));
    }

    #[test]
    fn empty_tree_queries() {
        let qt = Quadtree::new(Rect::new(p(0.0, 0.0), p(1.0, 1.0)));
        assert!(qt.is_empty());
        assert!(qt.window(&Rect::new(p(0.0, 0.0), p(1.0, 1.0))).is_empty());
        assert_eq!(qt.nearest(p(0.5, 0.5)), None);
        assert_eq!(Quadtree::bulk_load(&[]).len(), 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        #[test]
        fn prop_queries_match_brute(seed in 0u64..3000, n in 1usize..200) {
            let pts = uniform(n, seed);
            let qt = Quadtree::bulk_load(&pts);
            qt.check_invariants().unwrap();
            let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
            for _ in 0..6 {
                let c = p(rng.gen::<f64>(), rng.gen::<f64>());
                let r = Rect::from_center(c, rng.gen::<f64>() * 0.5, rng.gen::<f64>() * 0.5);
                let mut got = qt.window(&r);
                got.sort_unstable();
                proptest::prop_assert_eq!(got, brute_window(&pts, &r));
                let q = p(rng.gen::<f64>(), rng.gen::<f64>());
                let (_, d) = qt.nearest(q).unwrap();
                let want = pts.iter().map(|s| s.dist_sq(q)).fold(f64::INFINITY, f64::min);
                proptest::prop_assert_eq!(d, want);
            }
        }
    }
}
