//! # vaq-viz — dependency-free SVG visualisation
//!
//! Renders the scenes of the reproduced paper's figures: point sets,
//! Voronoi diagrams, query polygons, and candidate/result overlays
//! (Fig. 2: the two methods' candidate sets; Fig. 3: Voronoi diagram and
//! Delaunay triangulation). Output is plain SVG markup written with no
//! external dependencies, so it can run anywhere the workspace builds.
//!
//! ## Example
//!
//! ```
//! use vaq_geom::{Point, Rect};
//! use vaq_viz::Scene;
//!
//! let mut scene = Scene::new(Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)), 400.0);
//! scene.points(&[Point::new(0.3, 0.4)], 2.0, "black");
//! scene.circle(Point::new(0.3, 0.4), 6.0, "none", "red");
//! let svg = scene.finish();
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.ends_with("</svg>\n"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use vaq_delaunay::{Triangulation, VoronoiDiagram};
use vaq_geom::{Point, Polygon, Rect};

/// An SVG scene over a world-coordinate viewport.
///
/// World coordinates are mapped to pixels with the y-axis flipped (SVG's y
/// grows downward; geometry's grows upward), so rendered scenes match the
/// mathematical orientation of the paper's figures.
pub struct Scene {
    body: String,
    world: Rect,
    scale: f64,
    width_px: f64,
    height_px: f64,
}

impl Scene {
    /// Creates a scene showing `world`, `width_px` pixels wide (height
    /// follows from the aspect ratio).
    ///
    /// # Panics
    ///
    /// Panics if `world` is empty or `width_px` is not positive.
    pub fn new(world: Rect, width_px: f64) -> Scene {
        assert!(!world.is_empty(), "world viewport must be non-empty");
        assert!(width_px > 0.0, "pixel width must be positive");
        let scale = width_px / world.width();
        Scene {
            body: String::new(),
            world,
            scale,
            width_px,
            height_px: world.height() * scale,
        }
    }

    /// World → pixel transform (y flipped).
    fn px(&self, p: Point) -> (f64, f64) {
        (
            (p.x - self.world.min.x) * self.scale,
            self.height_px - (p.y - self.world.min.y) * self.scale,
        )
    }

    /// Draws a set of filled dots.
    pub fn points(&mut self, pts: &[Point], radius: f64, fill: &str) {
        for &p in pts {
            let (x, y) = self.px(p);
            let _ = writeln!(
                self.body,
                r#"<circle cx="{x:.2}" cy="{y:.2}" r="{radius}" fill="{fill}"/>"#
            );
        }
    }

    /// Draws one circle with explicit fill and stroke.
    pub fn circle(&mut self, c: Point, radius: f64, fill: &str, stroke: &str) {
        let (x, y) = self.px(c);
        let _ = writeln!(
            self.body,
            r#"<circle cx="{x:.2}" cy="{y:.2}" r="{radius}" fill="{fill}" stroke="{stroke}"/>"#
        );
    }

    /// Draws a line segment.
    pub fn segment(&mut self, a: Point, b: Point, stroke: &str, width: f64) {
        let (x1, y1) = self.px(a);
        let (x2, y2) = self.px(b);
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{stroke}" stroke-width="{width}"/>"#
        );
    }

    /// Draws a closed ring (polygon outline with optional translucent fill).
    pub fn ring(&mut self, ring: &[Point], stroke: &str, width: f64, fill: &str) {
        if ring.len() < 2 {
            return;
        }
        let mut d = String::new();
        for (i, &p) in ring.iter().enumerate() {
            let (x, y) = self.px(p);
            let _ = write!(d, "{}{x:.2},{y:.2} ", if i == 0 { "M" } else { "L" });
        }
        d.push('Z');
        let _ = writeln!(
            self.body,
            r#"<path d="{d}" stroke="{stroke}" stroke-width="{width}" fill="{fill}"/>"#
        );
    }

    /// Draws a polygon (outline + fill colour, `"none"` for no fill).
    pub fn polygon(&mut self, poly: &Polygon, stroke: &str, width: f64, fill: &str) {
        self.ring(poly.vertices(), stroke, width, fill);
    }

    /// Draws every Delaunay edge of a triangulation.
    pub fn delaunay_edges(&mut self, tri: &Triangulation, stroke: &str, width: f64) {
        for v in 0..tri.vertex_count() as u32 {
            for &u in tri.neighbors(v) {
                if u > v {
                    self.segment(tri.point(v), tri.point(u), stroke, width);
                }
            }
        }
    }

    /// Draws every (clipped) Voronoi cell boundary of a diagram.
    pub fn voronoi_cells(&mut self, vd: &VoronoiDiagram, stroke: &str, width: f64) {
        for cell in &vd.cells {
            self.ring(&cell.polygon, stroke, width, "none");
        }
    }

    /// Adds an SVG `<text>` label at a world position.
    pub fn label(&mut self, at: Point, text: &str, size_px: f64, fill: &str) {
        let (x, y) = self.px(at);
        let escaped = text
            .replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;");
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size_px}" fill="{fill}" font-family="sans-serif">{escaped}</text>"#
        );
    }

    /// Finalises the scene into a complete SVG document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" \
viewBox=\"0 0 {:.0} {:.0}\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n{}</svg>\n",
            self.width_px, self.height_px, self.width_px, self.height_px, self.body
        )
    }
}

/// Renders the paper's Fig. 2-style scene: all points in grey, the result
/// set in black, the method's extra (redundant) candidates in green, and
/// the query polygon outlined. Render once per method to compare candidate
/// sets visually.
pub fn candidate_scene(
    world: Rect,
    width_px: f64,
    points: &[Point],
    area: &Polygon,
    result: &[u32],
    candidates: &[u32],
) -> String {
    let mut scene = Scene::new(world, width_px);
    scene.points(points, 1.5, "#bbbbbb");
    let result_set: std::collections::HashSet<u32> = result.iter().copied().collect();
    let extra: Vec<Point> = candidates
        .iter()
        .filter(|id| !result_set.contains(id))
        .map(|&id| points[id as usize])
        .collect();
    scene.points(&extra, 2.5, "green");
    let result_pts: Vec<Point> = result.iter().map(|&id| points[id as usize]).collect();
    scene.points(&result_pts, 2.5, "black");
    scene.polygon(area, "black", 1.5, "none");
    scene.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn world() -> Rect {
        Rect::new(p(0.0, 0.0), p(1.0, 1.0))
    }

    #[test]
    fn svg_document_structure() {
        let mut s = Scene::new(world(), 300.0);
        s.points(&[p(0.5, 0.5)], 2.0, "black");
        s.segment(p(0.0, 0.0), p(1.0, 1.0), "blue", 1.0);
        s.label(p(0.1, 0.9), "a < b & c", 12.0, "black");
        let svg = s.finish();
        assert!(svg.starts_with("<svg xmlns"));
        assert!(svg.contains("<circle"));
        assert!(svg.contains("<line"));
        assert!(svg.contains("a &lt; b &amp; c"), "labels must be escaped");
        assert!(svg.ends_with("</svg>\n"));
    }

    #[test]
    fn y_axis_is_flipped() {
        let mut s = Scene::new(world(), 100.0);
        s.points(&[p(0.0, 0.0)], 1.0, "black"); // world bottom-left
        let svg = s.finish();
        // Bottom-left in world = (0, 100) in pixels.
        assert!(svg.contains(r#"cx="0.00" cy="100.00""#), "{svg}");
    }

    #[test]
    fn ring_closes_path() {
        let mut s = Scene::new(world(), 100.0);
        s.ring(&[p(0.1, 0.1), p(0.9, 0.1), p(0.5, 0.9)], "red", 1.0, "none");
        let svg = s.finish();
        assert!(svg.contains("Z\" stroke=\"red\""));
    }

    #[test]
    fn renders_triangulation_and_voronoi() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts: Vec<Point> = (0..40)
            .map(|_| p(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        let tri = Triangulation::new(&pts).unwrap();
        let vd = VoronoiDiagram::new(&tri, world());
        let mut s = Scene::new(world(), 400.0);
        s.delaunay_edges(&tri, "#999999", 0.5);
        s.voronoi_cells(&vd, "#3366cc", 0.5);
        s.points(&pts, 2.0, "black");
        let svg = s.finish();
        // Every Delaunay edge drawn once.
        assert_eq!(svg.matches("<line").count(), tri.edge_count());
        assert_eq!(svg.matches("<path").count(), 40);
    }

    #[test]
    fn candidate_scene_highlights_sets() {
        let pts = vec![p(0.2, 0.2), p(0.5, 0.5), p(0.8, 0.8)];
        let area = Polygon::new(vec![p(0.4, 0.4), p(0.6, 0.4), p(0.6, 0.6), p(0.4, 0.6)]).unwrap();
        let svg = candidate_scene(world(), 200.0, &pts, &area, &[1], &[0, 1]);
        assert!(svg.contains("green"), "extra candidate rendered");
        assert!(svg.contains("black"), "result rendered");
        // 3 grey + 1 green + 1 black = 5 circles.
        assert_eq!(svg.matches("<circle").count(), 5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_world_rejected() {
        Scene::new(Rect::EMPTY, 100.0);
    }
}
