//! Random query-area generator.
//!
//! The paper: *"The query area for each time of the experiment is a
//! randomly generated polygon of ten points"*, and *"the query size, i.e.,
//! the area of the query area's MBR divided by the total area of the
//! solution space"* is the sweep parameter.
//!
//! Sorting random vertices by angle around a centre is the standard way to
//! obtain a simple (non-self-intersecting), generally **concave** polygon
//! from random points — any other ordering usually self-intersects. The
//! generated star-shaped 10-gon is then rescaled so its MBR covers exactly
//! the requested fraction of the space, and placed uniformly at random
//! with the MBR fully inside the space.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vaq_geom::{Point, Polygon, Rect};

/// Configuration for the query-polygon generator.
#[derive(Clone, Copy, Debug)]
pub struct PolygonSpec {
    /// Number of vertices (the paper uses 10).
    pub vertices: usize,
    /// Target `area(MBR(A)) / area(space)` — the paper's "query size".
    pub query_size: f64,
    /// Minimum radius as a fraction of the maximum, in `(0, 1]`. Lower
    /// values give spikier, more concave polygons (more MBR waste for the
    /// traditional method).
    pub min_radius_ratio: f64,
}

impl Default for PolygonSpec {
    fn default() -> Self {
        PolygonSpec {
            vertices: 10,
            query_size: 0.01,
            min_radius_ratio: 0.3,
        }
    }
}

impl PolygonSpec {
    /// A 10-vertex polygon spec with the given query size.
    pub fn with_query_size(query_size: f64) -> PolygonSpec {
        PolygonSpec {
            query_size,
            ..PolygonSpec::default()
        }
    }
}

/// Generates a random simple polygon per `spec` inside `space`,
/// deterministically from `seed`.
///
/// # Panics
///
/// Panics if `spec.query_size` is not in `(0, 1]`, `spec.vertices < 3`, or
/// the space is empty.
pub fn random_query_polygon(space: &Rect, spec: &PolygonSpec, seed: u64) -> Polygon {
    assert!(spec.vertices >= 3, "a polygon needs at least 3 vertices");
    assert!(
        spec.query_size > 0.0 && spec.query_size <= 1.0,
        "query size must be in (0, 1], got {}",
        spec.query_size
    );
    assert!(!space.is_empty(), "space must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);

    // Star-shaped ring around the origin: sorted angles, random radii.
    // Resample the rare degenerate angle sets. Two guards:
    // * max cyclic angular gap < π — otherwise the origin falls outside
    //   the vertex hull and the angular-sort construction can
    //   self-intersect (it is only guaranteed simple for a centre
    //   interior to the hull);
    // * MBR not needle-thin — the isotropic rescale below would explode.
    let ring = loop {
        let mut angles: Vec<f64> = (0..spec.vertices)
            .map(|_| rng.gen::<f64>() * std::f64::consts::TAU)
            .collect();
        angles.sort_by(f64::total_cmp);
        // The gap that wraps around past TAU, plus each adjacent gap.
        // (`generate` asserts spec.vertices >= 3, so first/last exist.)
        let wrap_gap = match (angles.first(), angles.last()) {
            (Some(&first), Some(&last)) => std::f64::consts::TAU - (last - first),
            _ => std::f64::consts::TAU,
        };
        let max_gap = angles
            .iter()
            .zip(angles.iter().skip(1))
            .map(|(&a, &b)| b - a)
            .fold(wrap_gap, f64::max);
        if max_gap >= std::f64::consts::PI {
            continue;
        }
        let ring: Vec<Point> = angles
            .iter()
            .map(|&a| {
                let r = spec.min_radius_ratio + (1.0 - spec.min_radius_ratio) * rng.gen::<f64>();
                Point::new(r * a.cos(), r * a.sin())
            })
            .collect();
        let mbr = Rect::from_points(ring.iter().copied());
        if mbr.width() > 0.2 && mbr.height() > 0.2 {
            break ring;
        }
    };

    // Rescale isotropically so the MBR covers exactly `query_size` of the
    // space, then place the MBR uniformly inside the space.
    let mbr = Rect::from_points(ring.iter().copied());
    let target = spec.query_size * space.area();
    let s = (target / mbr.area()).sqrt();
    let w = mbr.width() * s;
    let h = mbr.height() * s;
    // With query_size ≤ 1 and a roughly isotropic ring, the scaled MBR fits
    // in the space; clamp the placement range defensively for the tall/wide
    // tail (the resample loop above bounds the aspect ratio).
    let max_x = (space.width() - w).max(0.0);
    let max_y = (space.height() - h).max(0.0);
    let ox = space.min.x + rng.gen::<f64>() * max_x - mbr.min.x * s;
    let oy = space.min.y + rng.gen::<f64>() * max_y - mbr.min.y * s;
    let verts = ring
        .iter()
        .map(|p| Point::new(p.x * s + ox, p.y * s + oy))
        .collect();
    Polygon::new(verts).expect("star construction yields a valid polygon")
}

/// Generates a deterministic suite of `count` query polygons whose query
/// sizes cycle through `sizes` — the mixed workload the cost-model query
/// planner is differential-tested and benchmarked on (no single fixed
/// strategy wins across the whole suite).
///
/// Polygon `i` uses `sizes[i % sizes.len()]` and seed `seed + i`, so a
/// suite is a stable prefix of any longer suite with the same seed.
///
/// # Panics
///
/// Panics if `sizes` is empty, or on any size [`random_query_polygon`]
/// rejects.
pub fn mixed_query_polygons(space: &Rect, sizes: &[f64], count: usize, seed: u64) -> Vec<Polygon> {
    assert!(!sizes.is_empty(), "need at least one query size");
    (0..count as u64)
        .map(|i| {
            let spec = PolygonSpec::with_query_size(sizes[i as usize % sizes.len()]);
            random_query_polygon(space, &spec, seed.wrapping_add(i))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::unit_space;

    #[test]
    fn polygon_is_simple_concave_capable_and_sized() {
        let space = unit_space();
        for seed in 0..50u64 {
            let spec = PolygonSpec::with_query_size(0.01);
            let poly = random_query_polygon(&space, &spec, seed);
            assert_eq!(poly.len(), 10);
            assert!(poly.is_simple(), "seed {seed} produced self-intersection");
            let mbr = poly.mbr();
            assert!(
                (mbr.area() / space.area() - 0.01).abs() < 1e-9,
                "seed {seed}: MBR fraction {}",
                mbr.area() / space.area()
            );
            assert!(space.contains_rect(&mbr), "seed {seed}: MBR escapes space");
        }
    }

    #[test]
    fn determinism_by_seed() {
        let space = unit_space();
        let spec = PolygonSpec::default();
        let a = random_query_polygon(&space, &spec, 7);
        let b = random_query_polygon(&space, &spec, 7);
        assert_eq!(a.vertices(), b.vertices());
        let c = random_query_polygon(&space, &spec, 8);
        assert_ne!(a.vertices(), c.vertices());
    }

    #[test]
    fn query_sizes_span_the_paper_sweep() {
        let space = unit_space();
        for qs in [0.01, 0.02, 0.04, 0.08, 0.16, 0.32] {
            let poly = random_query_polygon(&space, &PolygonSpec::with_query_size(qs), 99);
            assert!((poly.mbr().area() - qs).abs() < 1e-9);
        }
    }

    #[test]
    fn polygons_are_mostly_concave() {
        // Star polygons with radius ratio 0.3 are concave almost always;
        // over 50 seeds, demand a clear majority (the paper stresses
        // irregular/concave query areas).
        let space = unit_space();
        let concave = (0..50u64)
            .filter(|&s| !random_query_polygon(&space, &PolygonSpec::default(), s).is_convex())
            .count();
        assert!(concave > 40, "only {concave}/50 concave");
    }

    #[test]
    fn area_is_well_below_mbr_area() {
        // The motivating gap: for irregular polygons area(A) ≪ area(MBR).
        let space = unit_space();
        let mut ratios = Vec::new();
        for seed in 0..50u64 {
            let poly = random_query_polygon(&space, &PolygonSpec::default(), seed);
            ratios.push(poly.area() / poly.mbr().area());
        }
        let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(
            mean > 0.3 && mean < 0.8,
            "mean area/MBR ratio {mean} out of the plausible band"
        );
    }

    #[test]
    fn mixed_suite_cycles_sizes_and_is_a_stable_prefix() {
        let space = unit_space();
        let sizes = [0.01, 0.08, 0.25];
        let suite = mixed_query_polygons(&space, &sizes, 7, 42);
        assert_eq!(suite.len(), 7);
        for (i, poly) in suite.iter().enumerate() {
            assert!(
                (poly.mbr().area() - sizes[i % sizes.len()]).abs() < 1e-9,
                "polygon {i}"
            );
        }
        let longer = mixed_query_polygons(&space, &sizes, 11, 42);
        for (a, b) in suite.iter().zip(&longer) {
            assert_eq!(a.vertices(), b.vertices());
        }
    }

    #[test]
    #[should_panic(expected = "one query size")]
    fn mixed_suite_rejects_empty_sizes() {
        mixed_query_polygons(&unit_space(), &[], 3, 1);
    }

    #[test]
    #[should_panic(expected = "query size")]
    fn zero_query_size_is_rejected() {
        random_query_polygon(&unit_space(), &PolygonSpec::with_query_size(0.0), 1);
    }

    #[test]
    #[should_panic(expected = "3 vertices")]
    fn too_few_vertices_rejected() {
        let spec = PolygonSpec {
            vertices: 2,
            ..PolygonSpec::default()
        };
        random_query_polygon(&unit_space(), &spec, 1);
    }
}
