//! Experiment sweeps reproducing the paper's two evaluation setups.
//!
//! * **Data-size sweep** (Table I / Figs 4–5): data size 10⁵…10⁶, query
//!   size fixed at 1 %.
//! * **Query-size sweep** (Table II / Figs 6–7): data size fixed at 10⁵,
//!   query size 1 %…32 %.
//!
//! Each configuration is repeated with fresh random query polygons and the
//! mean is reported, mirroring the paper's repetition protocol. Timing is
//! strictly sequential (one query at a time on one thread); the only
//! parallelism is a build pipeline that constructs the *next* data size's
//! engine on a worker thread while the current one is being measured —
//! construction never overlaps measurement of the same engine.

use crate::datagen::{generate, unit_space, Distribution};
use crate::polygen::{random_query_polygon, PolygonSpec};
use std::time::Instant;
use vaq_core::sync;
use vaq_core::{AreaQueryEngine, ExpansionPolicy, QuerySession, QuerySpec, ShardedAreaQueryEngine};

/// Mean per-query measurements for one method.
#[derive(Clone, Copy, Debug, Default)]
pub struct MethodMeasurement {
    /// Mean candidates validated per query.
    pub candidates: f64,
    /// Mean redundant validations per query (Figs 5 and 7).
    pub redundant: f64,
    /// Mean wall-clock time per query, microseconds.
    pub time_us: f64,
}

/// Mean results for one `(data size, query size)` configuration — one row
/// of Table I or Table II.
#[derive(Clone, Copy, Debug)]
pub struct ConfigResult {
    /// Number of points in the database.
    pub data_size: usize,
    /// `area(MBR(A)) / area(space)`.
    pub query_size: f64,
    /// Repetitions averaged.
    pub reps: usize,
    /// Mean result-set size.
    pub result_size: f64,
    /// The traditional R-tree filter–refine method.
    pub traditional: MethodMeasurement,
    /// The paper's Voronoi-based method.
    pub voronoi: MethodMeasurement,
}

impl ConfigResult {
    /// Fraction of query time saved by the Voronoi method, in percent
    /// (the paper quotes 10.6 %–37.9 % across its sweeps).
    pub fn time_saving_pct(&self) -> f64 {
        100.0 * (1.0 - self.voronoi.time_us / self.traditional.time_us)
    }

    /// Fraction of candidates avoided by the Voronoi method, in percent.
    pub fn candidate_saving_pct(&self) -> f64 {
        100.0 * (1.0 - self.voronoi.candidates / self.traditional.candidates)
    }
}

/// Sweep-wide knobs shared by all configurations.
#[derive(Clone, Copy, Debug)]
pub struct SweepConfig {
    /// Repetitions per configuration (the paper uses 1000; 200 gives
    /// indistinguishable means much faster).
    pub reps: usize,
    /// Base RNG seed; every dataset and polygon derives from it.
    pub base_seed: u64,
    /// Point distribution.
    pub distribution: Distribution,
    /// Query polygon vertex count (the paper uses 10).
    pub polygon_vertices: usize,
    /// Spikiness of query polygons (see [`PolygonSpec::min_radius_ratio`]).
    pub min_radius_ratio: f64,
    /// Expansion policy for the Voronoi method.
    pub policy: ExpansionPolicy,
    /// Simulated geometry-record size in bytes per point (0 = pure
    /// in-memory regime). Restores the paper's validation-dominated cost
    /// model; see `vaq_core::RecordStore`.
    pub payload_bytes: usize,
    /// Build the next data size's engine on a worker thread while the
    /// current one is measured. Saves wall time, but the background build
    /// contends for memory bandwidth and visibly perturbs per-query
    /// timings — leave off for timing runs, use for stats-only sweeps.
    pub pipeline_builds: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            reps: 200,
            base_seed: 0x1CDE_2020,
            distribution: Distribution::Uniform,
            polygon_vertices: 10,
            min_radius_ratio: 0.3,
            policy: ExpansionPolicy::Segment,
            payload_bytes: 0,
            pipeline_builds: false,
        }
    }
}

impl SweepConfig {
    fn polygon_spec(&self, query_size: f64) -> PolygonSpec {
        PolygonSpec {
            vertices: self.polygon_vertices,
            query_size,
            min_radius_ratio: self.min_radius_ratio,
        }
    }
}

/// Measures one configuration on a pre-built engine: `reps` random
/// polygons, both methods on the same polygon, means reported.
pub fn run_config(engine: &AreaQueryEngine, query_size: f64, cfg: &SweepConfig) -> ConfigResult {
    let space = unit_space();
    let spec = cfg.polygon_spec(query_size);
    let mut session = QuerySession::new(engine);
    let trad_spec = QuerySpec::traditional();
    let voro_spec = QuerySpec::voronoi().policy(cfg.policy);
    let mut result_size = 0f64;
    let mut trad = MethodMeasurement::default();
    let mut voro = MethodMeasurement::default();
    for rep in 0..cfg.reps {
        let poly_seed = cfg
            .base_seed
            .wrapping_add(0x9E37_79B9)
            .wrapping_mul(rep as u64 + 1)
            ^ (query_size.to_bits());
        let poly = random_query_polygon(&space, &spec, poly_seed);

        let t0 = Instant::now();
        let rt = session.execute(&trad_spec, &poly);
        trad.time_us += t0.elapsed().as_secs_f64() * 1e6;

        let t1 = Instant::now();
        let rv = session.execute(&voro_spec, &poly);
        voro.time_us += t1.elapsed().as_secs_f64() * 1e6;

        let rt = rt.stats();
        let rv = rv.stats();
        debug_assert_eq!(rt.result_size, rv.result_size, "methods disagree");
        result_size += rt.result_size as f64;
        trad.candidates += rt.candidates as f64;
        trad.redundant += rt.redundant_validations() as f64;
        voro.candidates += rv.candidates as f64;
        voro.redundant += rv.redundant_validations() as f64;
    }
    let k = cfg.reps as f64;
    ConfigResult {
        data_size: engine.len(),
        query_size,
        reps: cfg.reps,
        result_size: result_size / k,
        traditional: MethodMeasurement {
            candidates: trad.candidates / k,
            redundant: trad.redundant / k,
            time_us: trad.time_us / k,
        },
        voronoi: MethodMeasurement {
            candidates: voro.candidates / k,
            redundant: voro.redundant / k,
            time_us: voro.time_us / k,
        },
    }
}

/// Builds the engine for one dataset of the sweep.
pub fn build_engine(data_size: usize, cfg: &SweepConfig) -> AreaQueryEngine {
    let pts = generate(
        data_size,
        cfg.distribution,
        cfg.base_seed ^ data_size as u64,
    );
    AreaQueryEngine::builder(&pts)
        .payload_bytes(cfg.payload_bytes)
        .build()
}

/// Builds the **sharded** engine over exactly the same dataset
/// [`build_engine`] would index (same seed derivation), partitioned into
/// `shards` shards (`0` auto-tunes to the hardware) — the serving-scale
/// counterpart for differential and throughput sweeps.
/// [`SweepConfig::payload_bytes`] attaches per-shard slices of the same
/// logical record store [`build_engine`] generates, so payload checksums
/// are bit-identical across the sharded and unsharded engines.
pub fn build_sharded_engine(
    data_size: usize,
    shards: usize,
    cfg: &SweepConfig,
) -> ShardedAreaQueryEngine {
    let pts = generate(
        data_size,
        cfg.distribution,
        cfg.base_seed ^ data_size as u64,
    );
    ShardedAreaQueryEngine::build_with_payload(&pts, shards, cfg.payload_bytes)
}

/// Table I / Figs 4–5: sweep over data sizes at a fixed query size.
///
/// With [`SweepConfig::pipeline_builds`], engines for successive sizes are
/// built on a worker thread while the previous one is measured (bounded
/// pipeline of depth 1); wall time drops to roughly `max(total build,
/// total measure)`, but the background build contends for memory bandwidth
/// and perturbs timings — so the default is fully sequential. `progress`
/// is invoked with each finished row.
pub fn data_size_sweep(
    sizes: &[usize],
    query_size: f64,
    cfg: &SweepConfig,
    mut progress: impl FnMut(&ConfigResult),
) -> Vec<ConfigResult> {
    if !cfg.pipeline_builds {
        return sizes
            .iter()
            .map(|&n| {
                let engine = build_engine(n, cfg);
                let row = run_config(&engine, query_size, cfg);
                progress(&row);
                row
            })
            .collect();
    }
    let (tx, rx) = sync::channel::bounded::<AreaQueryEngine>(1);
    let mut out = Vec::with_capacity(sizes.len());
    sync::scope(|s| {
        s.spawn(|| {
            for &n in sizes {
                // The receiver hangs up early only on measurement panic.
                if tx.send(build_engine(n, cfg)).is_err() {
                    break;
                }
            }
        });
        for _ in sizes {
            let engine = rx.recv().expect("builder thread lives");
            let row = run_config(&engine, query_size, cfg);
            progress(&row);
            out.push(row);
        }
    });
    out
}

/// Table II / Figs 6–7: sweep over query sizes at a fixed data size
/// (single engine build).
pub fn query_size_sweep(
    data_size: usize,
    query_sizes: &[f64],
    cfg: &SweepConfig,
    mut progress: impl FnMut(&ConfigResult),
) -> Vec<ConfigResult> {
    let engine = build_engine(data_size, cfg);
    query_sizes
        .iter()
        .map(|&qs| {
            let row = run_config(&engine, qs, cfg);
            progress(&row);
            row
        })
        .collect()
}

/// The paper's data-size grid: 1E5 … 1E6 in steps of 1E5.
pub fn paper_data_sizes() -> Vec<usize> {
    (1..=10).map(|k| k * 100_000).collect()
}

/// The paper's query-size grid: 1 %, 2 %, 4 %, 8 %, 16 %, 32 %.
pub fn paper_query_sizes() -> Vec<f64> {
    vec![0.01, 0.02, 0.04, 0.08, 0.16, 0.32]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SweepConfig {
        SweepConfig {
            reps: 12,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn run_config_produces_consistent_means() {
        let cfg = small_cfg();
        let engine = build_engine(4000, &cfg);
        let row = run_config(&engine, 0.02, &cfg);
        assert_eq!(row.data_size, 4000);
        assert_eq!(row.reps, 12);
        // Traditional candidates ≈ n × query size = 80 (loose band: the
        // mean over 12 star polygons fluctuates).
        assert!(
            row.traditional.candidates > 30.0 && row.traditional.candidates < 160.0,
            "trad candidates {}",
            row.traditional.candidates
        );
        // Identities: result ≤ candidates for both methods; redundant =
        // candidates − result (methods return identical results).
        assert!(row.result_size <= row.traditional.candidates);
        assert!(row.result_size <= row.voronoi.candidates);
        assert!(
            (row.traditional.candidates - row.traditional.redundant - row.result_size).abs() < 1e-9
        );
        assert!((row.voronoi.candidates - row.voronoi.redundant - row.result_size).abs() < 1e-9);
        assert!(row.traditional.time_us > 0.0 && row.voronoi.time_us > 0.0);
    }

    #[test]
    fn voronoi_saves_candidates_at_scale() {
        let cfg = small_cfg();
        let engine = build_engine(20_000, &cfg);
        let row = run_config(&engine, 0.01, &cfg);
        assert!(
            row.candidate_saving_pct() > 15.0,
            "candidate saving {}%",
            row.candidate_saving_pct()
        );
    }

    #[test]
    fn data_size_sweep_pipeline_returns_rows_in_order() {
        let cfg = SweepConfig {
            pipeline_builds: true,
            ..small_cfg()
        };
        let mut seen = Vec::new();
        let rows = data_size_sweep(&[1000, 2000, 3000], 0.02, &cfg, |r| {
            seen.push(r.data_size);
        });
        assert_eq!(seen, vec![1000, 2000, 3000]);
        assert_eq!(rows.len(), 3);
        assert!(rows.windows(2).all(|w| w[0].data_size < w[1].data_size));
        // Result size grows roughly linearly with data size.
        assert!(rows[2].result_size > rows[0].result_size * 2.0);
        // The sequential path returns the same statistics (times differ).
        let seq = data_size_sweep(&[1000, 2000, 3000], 0.02, &small_cfg(), |_| {});
        for (a, b) in rows.iter().zip(&seq) {
            assert_eq!(a.data_size, b.data_size);
            assert!((a.result_size - b.result_size).abs() < 1e-9);
            assert!((a.traditional.candidates - b.traditional.candidates).abs() < 1e-9);
        }
    }

    #[test]
    fn query_size_sweep_scales_with_area() {
        let cfg = small_cfg();
        let rows = query_size_sweep(5000, &[0.01, 0.04], &cfg, |_| {});
        assert_eq!(rows.len(), 2);
        // 4× the MBR fraction ⇒ ≈ 4× the candidates (loose band).
        let ratio = rows[1].traditional.candidates / rows[0].traditional.candidates;
        assert!(
            ratio > 2.0 && ratio < 8.0,
            "candidate ratio {ratio} not ≈ 4"
        );
    }

    #[test]
    fn sharded_engine_indexes_the_same_dataset() {
        use crate::polygen::{random_query_polygon, PolygonSpec};
        let cfg = small_cfg();
        let single = build_engine(3000, &cfg);
        let sharded = build_sharded_engine(3000, 4, &cfg);
        assert_eq!(sharded.len(), single.len());
        assert_eq!(sharded.shard_count(), 4);
        let area = random_query_polygon(
            &crate::datagen::unit_space(),
            &PolygonSpec::with_query_size(0.03),
            7,
        );
        let want = {
            let mut v = single.brute_force(&area);
            v.sort_unstable();
            v
        };
        assert_eq!(sharded.execute(&QuerySpec::new(), &area).indices, want);
    }

    #[test]
    fn paper_grids_match_the_paper() {
        assert_eq!(paper_data_sizes().len(), 10);
        assert_eq!(paper_data_sizes()[0], 100_000);
        assert_eq!(paper_data_sizes()[9], 1_000_000);
        assert_eq!(
            paper_query_sizes(),
            vec![0.01, 0.02, 0.04, 0.08, 0.16, 0.32]
        );
    }
}
