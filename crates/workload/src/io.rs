//! Plain-text data interchange: CSV point sets and WKT geometries.
//!
//! Enough I/O to run the engine on real data without pulling in a GIS
//! stack: `x,y` CSV for point databases (the common export format of the
//! POI datasets the paper's domain uses) and the WKT `POINT` / `POLYGON`
//! subset for query areas — including holes, which map to
//! [`vaq_geom::Region`].
//!
//! Parsers are strict (they reject rather than guess) and every writer
//! round-trips through its parser in the tests.

use std::fmt::Write as _;
use vaq_geom::{Point, Polygon, Region};

/// Error type for all parsers in this module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line (CSV) or 0 (single-geometry parsers).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses an `x,y` CSV document into points.
///
/// Exactly two columns per row. Blank lines and `#` comment lines are
/// skipped; an optional `x,y` header (any case) is accepted on the first
/// data line.
pub fn points_from_csv(text: &str) -> Result<Vec<Point>, ParseError> {
    let mut out = Vec::new();
    let mut first_data_line = true;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cols = line.split(',').map(str::trim);
        let (Some(a), Some(b), None) = (cols.next(), cols.next(), cols.next()) else {
            return Err(err(i + 1, format!("expected two columns, got {line:?}")));
        };
        if first_data_line && a.eq_ignore_ascii_case("x") && b.eq_ignore_ascii_case("y") {
            first_data_line = false;
            continue;
        }
        first_data_line = false;
        let x: f64 = a
            .parse()
            .map_err(|_| err(i + 1, format!("bad x coordinate {a:?}")))?;
        let y: f64 = b
            .parse()
            .map_err(|_| err(i + 1, format!("bad y coordinate {b:?}")))?;
        if !x.is_finite() || !y.is_finite() {
            return Err(err(i + 1, "non-finite coordinate"));
        }
        out.push(Point::new(x, y));
    }
    Ok(out)
}

/// Writes points as `x,y` CSV with a header line.
pub fn points_to_csv(points: &[Point]) -> String {
    let mut s = String::from("x,y\n");
    for p in points {
        let _ = writeln!(s, "{},{}", p.x, p.y);
    }
    s
}

/// Parses a WKT `POINT (x y)`.
pub fn point_from_wkt(text: &str) -> Result<Point, ParseError> {
    let body = tagged_body(text, "POINT")?;
    parse_coord_pair(body.trim())
}

/// Parses a WKT `POLYGON ((x y, …))` — outer ring only.
pub fn polygon_from_wkt(text: &str) -> Result<Polygon, ParseError> {
    let region = region_from_wkt(text)?;
    if !region.holes().is_empty() {
        return Err(err(0, "polygon has interior rings; use region_from_wkt"));
    }
    Ok(region.outer().clone())
}

/// Parses a WKT `POLYGON ((outer), (hole), …)` into a [`Region`].
pub fn region_from_wkt(text: &str) -> Result<Region, ParseError> {
    let body = tagged_body(text, "POLYGON")?;
    let rings = split_rings(body)?;
    if rings.is_empty() {
        return Err(err(0, "POLYGON must have at least one ring"));
    }
    let mut parsed: Vec<Vec<Point>> = Vec::with_capacity(rings.len());
    for ring in rings {
        parsed.push(parse_ring(&ring)?);
    }
    let mut it = parsed.into_iter();
    let outer = it.next().expect("checked non-empty");
    Region::from_rings(outer, it.collect())
        .map_err(|e| err(0, format!("invalid ring geometry: {e}")))
}

/// Writes a polygon as WKT (closing the ring, as WKT requires).
pub fn polygon_to_wkt(poly: &Polygon) -> String {
    let mut s = String::from("POLYGON ((");
    write_ring(&mut s, poly.vertices());
    s.push_str("))");
    s
}

/// Writes a region as WKT with its holes as interior rings.
pub fn region_to_wkt(region: &Region) -> String {
    let mut s = String::from("POLYGON ((");
    write_ring(&mut s, region.outer().vertices());
    s.push(')');
    for hole in region.holes() {
        s.push_str(", (");
        write_ring(&mut s, hole.vertices());
        s.push(')');
    }
    s.push(')');
    s
}

fn write_ring(s: &mut String, vertices: &[Point]) {
    for (i, p) in vertices.iter().chain(vertices.first()).enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{} {}", p.x, p.y);
    }
}

/// Strips `TAG ( … )`, returning the inside of the outermost parentheses.
fn tagged_body<'a>(text: &'a str, tag: &str) -> Result<&'a str, ParseError> {
    let t = text.trim();
    let upper = t.to_ascii_uppercase();
    if !upper.starts_with(tag) {
        return Err(err(0, format!("expected {tag} geometry, got {t:?}")));
    }
    let rest = t[tag.len()..].trim_start();
    if !rest.starts_with('(') || !rest.ends_with(')') {
        return Err(err(0, format!("{tag} body must be parenthesised")));
    }
    // vaq-lint: allow(panic-hygiene) -- the guard above proves `rest`
    // starts with '(' and ends with ')', both one-byte chars, so the
    // range 1..len-1 is valid for any input that reaches this line.
    Ok(&rest[1..rest.len() - 1])
}

/// Splits `(ring), (ring), …` at depth-zero commas.
fn split_rings(body: &str) -> Result<Vec<String>, ParseError> {
    let mut rings = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for ch in body.chars() {
        match ch {
            '(' => {
                depth += 1;
                if depth == 1 {
                    continue; // ring opener is not part of the content
                }
            }
            ')' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| err(0, "unbalanced parentheses"))?;
                if depth == 0 {
                    rings.push(std::mem::take(&mut cur));
                    continue;
                }
            }
            ',' if depth == 0 => continue, // separator between rings
            _ => {}
        }
        if depth >= 1 {
            cur.push(ch);
        }
    }
    if depth != 0 {
        return Err(err(0, "unbalanced parentheses"));
    }
    Ok(rings)
}

/// Parses `x y, x y, …`, dropping the WKT closing vertex when present.
fn parse_ring(ring: &str) -> Result<Vec<Point>, ParseError> {
    let mut pts = Vec::new();
    for pair in ring.split(',') {
        pts.push(parse_coord_pair(pair.trim())?);
    }
    if pts.len() >= 2 && pts.first() == pts.last() {
        pts.pop(); // WKT rings repeat the first vertex; Polygon does not.
    }
    Ok(pts)
}

fn parse_coord_pair(pair: &str) -> Result<Point, ParseError> {
    let mut it = pair.split_whitespace();
    let (Some(a), Some(b), None) = (it.next(), it.next(), it.next()) else {
        return Err(err(0, format!("expected 'x y', got {pair:?}")));
    };
    let x: f64 = a
        .parse()
        .map_err(|_| err(0, format!("bad coordinate {a:?}")))?;
    let y: f64 = b
        .parse()
        .map_err(|_| err(0, format!("bad coordinate {b:?}")))?;
    if !x.is_finite() || !y.is_finite() {
        return Err(err(0, "non-finite coordinate"));
    }
    Ok(Point::new(x, y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip() {
        let pts = vec![
            Point::new(0.5, 1.5),
            Point::new(-3.25, 0.0),
            Point::new(1e-9, 2e9),
        ];
        let csv = points_to_csv(&pts);
        assert_eq!(points_from_csv(&csv).unwrap(), pts);
    }

    #[test]
    fn csv_accepts_comments_blanks_and_header() {
        let text = "# a comment\n\nx,y\n1.0, 2.0\n# another\n3,4\n";
        let pts = points_from_csv(text).unwrap();
        assert_eq!(pts, vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)]);
    }

    #[test]
    fn csv_rejects_malformed_rows() {
        assert!(points_from_csv("1.0\n").is_err());
        assert!(points_from_csv("1.0,2.0,3.0\n").is_err());
        assert!(points_from_csv("1.0,abc\n").is_err());
        let e = points_from_csv("1,2\nNaN,0\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn wkt_point() {
        assert_eq!(
            point_from_wkt("POINT (3.5 -2)").unwrap(),
            Point::new(3.5, -2.0)
        );
        assert_eq!(point_from_wkt("point(0 0)").unwrap(), Point::new(0.0, 0.0));
        assert!(point_from_wkt("POINT (1)").is_err());
        assert!(point_from_wkt("LINESTRING (0 0, 1 1)").is_err());
    }

    #[test]
    fn wkt_polygon_round_trip() {
        let poly = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 3.0),
            Point::new(0.0, 3.0),
        ])
        .unwrap();
        let wkt = polygon_to_wkt(&poly);
        assert_eq!(wkt, "POLYGON ((0 0, 4 0, 4 3, 0 3, 0 0))");
        let back = polygon_from_wkt(&wkt).unwrap();
        assert_eq!(back.vertices(), poly.vertices());
    }

    #[test]
    fn wkt_polygon_without_closing_vertex_accepted() {
        let poly = polygon_from_wkt("POLYGON ((0 0, 1 0, 0 1))").unwrap();
        assert_eq!(poly.len(), 3);
    }

    #[test]
    fn wkt_region_with_holes_round_trip() {
        let region = Region::from_rings(
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(10.0, 10.0),
                Point::new(0.0, 10.0),
            ],
            vec![vec![
                Point::new(2.0, 2.0),
                Point::new(4.0, 2.0),
                Point::new(4.0, 4.0),
                Point::new(2.0, 4.0),
            ]],
        )
        .unwrap();
        let wkt = region_to_wkt(&region);
        let back = region_from_wkt(&wkt).unwrap();
        assert_eq!(back.outer().vertices(), region.outer().vertices());
        assert_eq!(back.holes().len(), 1);
        assert_eq!(back.holes()[0].vertices(), region.holes()[0].vertices());
        // A holed WKT is rejected by the plain-polygon parser.
        assert!(polygon_from_wkt(&wkt).is_err());
    }

    #[test]
    fn wkt_rejects_garbage() {
        assert!(
            region_from_wkt("POLYGON (0 0, 1 1)").is_err(),
            "ring without parens"
        );
        assert!(region_from_wkt("POLYGON ((0 0, 1 1)").is_err());
        assert!(region_from_wkt("POLYGON ()").is_err());
        assert!(region_from_wkt("POLYGON ((0 0, 1 0, zero one))").is_err());
        // Degenerate ring (all collinear) is a geometry error.
        assert!(region_from_wkt("POLYGON ((0 0, 1 1, 2 2))").is_err());
    }

    #[test]
    fn engine_runs_on_wkt_loaded_data() {
        use vaq_core::AreaQueryEngine;
        let csv = "x,y\n0.1,0.1\n0.9,0.1\n0.5,0.9\n0.5,0.4\n";
        let pts = points_from_csv(csv).unwrap();
        let engine = AreaQueryEngine::build(&pts);
        let area = polygon_from_wkt("POLYGON ((0 0, 1 0, 0.5 0.7))").unwrap();
        let got = engine.voronoi(&area).sorted_indices();
        assert_eq!(got, engine.traditional(&area).sorted_indices());
        assert!(got.contains(&3), "the centre point is inside");
    }
}
