//! Seeded point-set generators.
//!
//! The paper evaluates on point databases of 10⁵–10⁶ points without naming
//! a distribution; the candidate counts it reports (≈ `n ×` query size for
//! the traditional method) are exactly what a **uniform** distribution
//! yields, so uniform over the unit square is the default. Clustered and
//! grid generators support the distribution ablation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vaq_geom::{Point, Rect};

/// The solution space used throughout the experiments: the unit square.
pub fn unit_space() -> Rect {
    Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
}

/// Point distribution for dataset generation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum Distribution {
    /// i.i.d. uniform over the unit square (the paper's implied setup).
    #[default]
    Uniform,
    /// Gaussian clusters: points drawn around uniformly placed centres
    /// with the given standard deviation, clamped to the space.
    Clustered {
        /// Number of cluster centres.
        clusters: usize,
        /// Standard deviation of each cluster (in space units).
        sigma: f64,
    },
    /// A jittered regular grid: `⌈√n⌉²` cells, one point per cell offset by
    /// up to `jitter` of the cell size. `jitter = 0` is an exact grid —
    /// maximal cocircular degeneracy for the triangulation.
    Grid {
        /// Jitter amplitude as a fraction of the cell size, in `[0, 1]`.
        jitter: f64,
    },
}

/// Site-weight distribution for weighted (power-diagram) workloads.
///
/// Weights are **squared radii**: a site of weight `w = r²` claims every
/// location within distance `r` of itself before an unweighted site at
/// the same spot would. Generators are parameterised by radius, not
/// weight, because radii are what a modeller reasons about (sensor
/// ranges, service radii).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WeightDistribution {
    /// i.i.d. uniform radii in `[0, max_radius]`.
    Uniform {
        /// Largest radius a site may draw.
        max_radius: f64,
    },
    /// Radii clustered around `groups` representative magnitudes (drawn
    /// uniformly in `(0, max_radius]`), each site jittering its group's
    /// radius by up to `±jitter` of it — the "few site classes" shape of
    /// real facility data (a handful of station types, each with its own
    /// service radius).
    ClusteredRadii {
        /// Number of representative radius magnitudes.
        groups: usize,
        /// Largest representative radius.
        max_radius: f64,
        /// Per-site relative jitter in `[0, 1]`.
        jitter: f64,
    },
}

/// Generates one site weight (a squared radius) per point,
/// deterministically from `seed`. All weights are finite and
/// non-negative, ready for
/// [`EngineBuilder::weights`](../vaq_core/struct.EngineBuilder.html).
pub fn generate_weights(n: usize, dist: WeightDistribution, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    match dist {
        WeightDistribution::Uniform { max_radius } => (0..n)
            .map(|_| {
                let r = rng.gen::<f64>() * max_radius;
                r * r
            })
            .collect(),
        WeightDistribution::ClusteredRadii {
            groups,
            max_radius,
            jitter,
        } => {
            let k = groups.max(1);
            let radii: Vec<f64> = (0..k)
                .map(|_| (1.0 - rng.gen::<f64>()) * max_radius)
                .collect();
            (0..n)
                .map(|_| {
                    let r0 = radii[rng.gen_range(0..k)];
                    let r = r0 * (1.0 + (rng.gen::<f64>() * 2.0 - 1.0) * jitter);
                    r * r
                })
                .collect()
        }
    }
}

/// Generates `n` points with the given distribution, deterministically
/// from `seed`.
pub fn generate(n: usize, dist: Distribution, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    match dist {
        Distribution::Uniform => (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect(),
        Distribution::Clustered { clusters, sigma } => {
            let k = clusters.max(1);
            let centres: Vec<Point> = (0..k)
                .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
                .collect();
            (0..n)
                .map(|_| {
                    let c = centres[rng.gen_range(0..k)];
                    // Box–Muller for a 2-D Gaussian offset.
                    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                    let u2: f64 = rng.gen();
                    let r = sigma * (-2.0 * u1.ln()).sqrt();
                    let (s, co) = (std::f64::consts::TAU * u2).sin_cos();
                    Point::new(
                        (c.x + r * co).clamp(0.0, 1.0),
                        (c.y + r * s).clamp(0.0, 1.0),
                    )
                })
                .collect()
        }
        Distribution::Grid { jitter } => {
            let side = (n as f64).sqrt().ceil() as usize;
            let cell = 1.0 / side as f64;
            let mut pts = Vec::with_capacity(n);
            'outer: for gy in 0..side {
                for gx in 0..side {
                    if pts.len() == n {
                        break 'outer;
                    }
                    let jx = (rng.gen::<f64>() - 0.5) * jitter;
                    let jy = (rng.gen::<f64>() - 0.5) * jitter;
                    pts.push(Point::new(
                        ((gx as f64 + 0.5 + jx) * cell).clamp(0.0, 1.0),
                        ((gy as f64 + 0.5 + jy) * cell).clamp(0.0, 1.0),
                    ));
                }
            }
            pts
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic_and_in_space() {
        let a = generate(500, Distribution::Uniform, 9);
        let b = generate(500, Distribution::Uniform, 9);
        assert_eq!(a, b);
        let c = generate(500, Distribution::Uniform, 10);
        assert_ne!(a, c);
        let space = unit_space();
        assert!(a.iter().all(|p| space.contains_point(*p)));
    }

    #[test]
    fn uniform_fills_the_space_roughly_evenly() {
        let pts = generate(10_000, Distribution::Uniform, 11);
        // Count points per quadrant; each should hold ~2500 ± 5 σ.
        let mut quads = [0usize; 4];
        for p in &pts {
            quads[usize::from(p.x >= 0.5) + 2 * usize::from(p.y >= 0.5)] += 1;
        }
        for q in quads {
            assert!((2000..3000).contains(&q), "quadrant count {q}");
        }
    }

    #[test]
    fn clustered_concentrates_points() {
        let dist = Distribution::Clustered {
            clusters: 3,
            sigma: 0.01,
        };
        let pts = generate(3000, dist, 12);
        assert_eq!(pts.len(), 3000);
        let space = unit_space();
        assert!(pts.iter().all(|p| space.contains_point(*p)));
        // With σ = 0.01 and 3 clusters, the points cover only a small part
        // of the space: their bounding boxes around cluster centres are
        // tiny, so the average pairwise x-spread is dominated by the
        // distance between centres, not the full square. A crude check:
        // at least half the points lie within 0.05 of some other 100
        // consecutive points' mean.
        let mean_x: f64 = pts.iter().map(|p| p.x).sum::<f64>() / 3000.0;
        let var_x: f64 = pts.iter().map(|p| (p.x - mean_x).powi(2)).sum::<f64>() / 3000.0;
        // Uniform variance would be 1/12 ≈ 0.083; clusters give much less
        // unless centres happen to be maximally spread (still < 0.25).
        assert!(var_x < 0.25, "variance {var_x}");
    }

    #[test]
    fn grid_without_jitter_is_exact() {
        let pts = generate(16, Distribution::Grid { jitter: 0.0 }, 13);
        assert_eq!(pts.len(), 16);
        // 4×4 grid with cell 0.25: coordinates at 0.125 + k·0.25.
        for p in &pts {
            let kx = (p.x - 0.125) / 0.25;
            assert!((kx - kx.round()).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_are_deterministic_finite_and_bounded() {
        let dist = WeightDistribution::Uniform { max_radius: 0.1 };
        let a = generate_weights(400, dist, 21);
        assert_eq!(a, generate_weights(400, dist, 21));
        assert_ne!(a, generate_weights(400, dist, 22));
        assert!(a.iter().all(|w| w.is_finite() && (0.0..=0.01).contains(w)));
    }

    #[test]
    fn clustered_radii_form_few_magnitude_groups() {
        let dist = WeightDistribution::ClusteredRadii {
            groups: 3,
            max_radius: 0.2,
            jitter: 0.0,
        };
        let ws = generate_weights(1000, dist, 23);
        assert!(ws.iter().all(|w| w.is_finite() && *w >= 0.0));
        // Zero jitter collapses each group to one exact weight.
        let mut distinct = ws.clone();
        distinct.sort_by(f64::total_cmp);
        distinct.dedup();
        assert!(
            (1..=3).contains(&distinct.len()),
            "got {} distinct weights",
            distinct.len()
        );
    }

    #[test]
    fn grid_truncates_to_exactly_n() {
        let pts = generate(10, Distribution::Grid { jitter: 0.5 }, 14);
        assert_eq!(pts.len(), 10);
        assert!(pts.iter().all(|p| unit_space().contains_point(*p)));
    }
}
