//! Table and CSV rendering of experiment results, in the layout of the
//! paper's Table I / Table II.

use crate::experiment::ConfigResult;
use std::fmt::Write as _;

/// CSV header matching [`to_csv`].
pub const CSV_HEADER: &str = "data_size,query_size,reps,result_size,\
trad_candidates,trad_redundant,trad_time_us,\
voro_candidates,voro_redundant,voro_time_us,\
time_saving_pct,candidate_saving_pct";

/// Renders rows as CSV (header + one line per configuration).
pub fn to_csv(rows: &[ConfigResult]) -> String {
    let mut s = String::from(CSV_HEADER);
    s.push('\n');
    for r in rows {
        let _ = writeln!(
            s,
            "{},{},{},{:.2},{:.2},{:.2},{:.3},{:.2},{:.2},{:.3},{:.1},{:.1}",
            r.data_size,
            r.query_size,
            r.reps,
            r.result_size,
            r.traditional.candidates,
            r.traditional.redundant,
            r.traditional.time_us,
            r.voronoi.candidates,
            r.voronoi.redundant,
            r.voronoi.time_us,
            r.time_saving_pct(),
            r.candidate_saving_pct(),
        );
    }
    s
}

/// Renders rows as a markdown table in the layout of the paper's tables:
/// one row per configuration, method columns side by side.
///
/// `sweep_column` labels the varying parameter: `"Data size"` (Table I) or
/// `"Query size"` (Table II).
pub fn to_markdown(rows: &[ConfigResult], sweep_column: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "| {sweep_column} | Result size | Trad candidates | Trad time (µs) | \
Voro candidates | Voro time (µs) | Time saved | Candidates saved |"
    );
    let _ = writeln!(s, "|---|---|---|---|---|---|---|---|");
    for r in rows {
        let sweep_value = if sweep_column.to_lowercase().contains("query") {
            format!("{:.0}%", r.query_size * 100.0)
        } else {
            format!("{:.0e}", r.data_size as f64)
        };
        let _ = writeln!(
            s,
            "| {} | {:.2} | {:.2} | {:.1} | {:.2} | {:.1} | {:.1}% | {:.1}% |",
            sweep_value,
            r.result_size,
            r.traditional.candidates,
            r.traditional.time_us,
            r.voronoi.candidates,
            r.voronoi.time_us,
            r.time_saving_pct(),
            r.candidate_saving_pct(),
        );
    }
    s
}

/// Renders one figure series as CSV: the x column plus one column per
/// method, using `pick` to select the plotted quantity (time, redundant
/// validations, …).
pub fn figure_csv(
    rows: &[ConfigResult],
    x_label: &str,
    y_label: &str,
    pick: impl Fn(&ConfigResult) -> (f64, f64, f64),
) -> String {
    let mut s = format!("{x_label},{y_label}_traditional,{y_label}_voronoi\n");
    for r in rows {
        let (x, t, v) = pick(r);
        let _ = writeln!(s, "{x},{t:.3},{v:.3}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::MethodMeasurement;

    fn row(n: usize, qs: f64) -> ConfigResult {
        ConfigResult {
            data_size: n,
            query_size: qs,
            reps: 10,
            result_size: 50.0,
            traditional: MethodMeasurement {
                candidates: 100.0,
                redundant: 50.0,
                time_us: 200.0,
            },
            voronoi: MethodMeasurement {
                candidates: 60.0,
                redundant: 10.0,
                time_us: 150.0,
            },
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = to_csv(&[row(100_000, 0.01), row(200_000, 0.01)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("data_size,"));
        assert!(lines[1].starts_with("100000,0.01,10,50.00,100.00,"));
        // time saved = 1 - 150/200 = 25 %; candidates saved = 40 %.
        assert!(lines[1].ends_with("25.0,40.0"));
    }

    #[test]
    fn markdown_formats_sweep_value_by_column() {
        let md = to_markdown(&[row(100_000, 0.01)], "Data size");
        assert!(md.contains("| 1e5 |"), "{md}");
        let md = to_markdown(&[row(100_000, 0.08)], "Query size");
        assert!(md.contains("| 8% |"), "{md}");
    }

    #[test]
    fn figure_csv_picks_series() {
        let rows = [row(100_000, 0.01)];
        let csv = figure_csv(&rows, "data_size", "time_us", |r| {
            (r.data_size as f64, r.traditional.time_us, r.voronoi.time_us)
        });
        assert_eq!(
            csv,
            "data_size,time_us_traditional,time_us_voronoi\n100000,200.000,150.000\n"
        );
    }
}
