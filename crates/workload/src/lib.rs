//! # vaq-workload — experiment machinery
//!
//! Everything needed to reproduce the evaluation section of *Area Queries
//! Based on Voronoi Diagrams* (ICDE 2020):
//!
//! * [`datagen`] — seeded point-set generators (uniform — the paper's
//!   implied distribution — plus clustered and grid for ablations);
//! * [`polygen`] — the paper's random 10-vertex query polygons, rescaled
//!   to an exact "query size" (MBR area as a fraction of the space);
//! * [`experiment`] — the Table I (data-size) and Table II (query-size)
//!   sweeps with mean-of-repetitions measurement;
//! * [`report`] — CSV and markdown rendering in the paper's table layout;
//! * [`io`] — CSV point sets and WKT polygons/regions, for running the
//!   engine on external data.
//!
//! ```
//! use vaq_workload::datagen::{generate, Distribution};
//! use vaq_workload::experiment::{build_engine, run_config, SweepConfig};
//!
//! let cfg = SweepConfig { reps: 5, ..SweepConfig::default() };
//! let engine = build_engine(2000, &cfg);
//! let row = run_config(&engine, 0.02, &cfg);
//! assert!(row.traditional.candidates >= row.result_size);
//! let _ = generate(10, Distribution::Uniform, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datagen;
pub mod experiment;
pub mod io;
pub mod polygen;
pub mod report;

pub use datagen::{generate, generate_weights, unit_space, Distribution, WeightDistribution};
pub use experiment::{
    build_engine, build_sharded_engine, data_size_sweep, paper_data_sizes, paper_query_sizes,
    query_size_sweep, run_config, ConfigResult, MethodMeasurement, SweepConfig,
};
pub use polygen::{mixed_query_polygons, random_query_polygon, PolygonSpec};
