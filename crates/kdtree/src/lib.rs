//! # vaq-kdtree — static bulk-built kd-tree
//!
//! A balanced 2-D kd-tree built once over a point set, used by the
//! reproduction of *Area Queries Based on Voronoi Diagrams* (ICDE 2020) as
//! an **ablation baseline**: the paper's related work names kd-trees among
//! the classical spatial indexes, and the benchmark harness swaps this tree
//! in for (a) the traditional method's window-query filter and (b) the
//! Voronoi method's seed nearest-neighbour lookup, to show the paper's
//! conclusions do not hinge on the R-tree specifically.
//!
//! The tree is stored implicitly: a permutation of point indices arranged
//! so that each subtree occupies a contiguous slice with its root at the
//! median position, split axes alternating by depth. No per-node
//! allocation, cache-friendly traversal.
//!
//! ## Example
//!
//! ```
//! use vaq_geom::{Point, Rect};
//! use vaq_kdtree::KdTree;
//!
//! let pts = vec![
//!     Point::new(0.1, 0.1),
//!     Point::new(0.9, 0.2),
//!     Point::new(0.5, 0.7),
//! ];
//! let tree = KdTree::build(&pts);
//! let (nn, _d2) = tree.nearest(Point::new(0.8, 0.3)).unwrap();
//! assert_eq!(nn, 1);
//! let mut hits = tree.window(&Rect::new(Point::new(0.0, 0.0), Point::new(0.6, 1.0)));
//! hits.sort_unstable();
//! assert_eq!(hits, vec![0, 2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use vaq_geom::{Point, Rect};

/// A static, balanced kd-tree over 2-D points.
///
/// Build once with [`KdTree::build`]; supports window, nearest-neighbour
/// and k-nearest-neighbour queries. Point ids are the indices into the
/// build slice.
pub struct KdTree {
    pts: Vec<Point>,
    /// Permutation of `0..n`: each subtree is a contiguous slice with the
    /// splitting point at the median index.
    order: Vec<u32>,
}

/// Coordinate of `p` along `axis` (0 = x, 1 = y).
#[inline]
fn coord(p: Point, axis: usize) -> f64 {
    if axis == 0 {
        p.x
    } else {
        p.y
    }
}

impl KdTree {
    /// Builds the tree over `points` (ids `0..n`). `O(n log n)`.
    pub fn build(points: &[Point]) -> KdTree {
        let mut order: Vec<u32> = (0..points.len() as u32).collect();
        build_rec(points, &mut order, 0);
        KdTree {
            pts: points.to_vec(),
            order,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.pts.len()
    }

    /// `true` when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.pts.is_empty()
    }

    /// Ids of all points inside the closed rectangle `rect`.
    pub fn window(&self, rect: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        self.window_for_each(rect, |id| out.push(id));
        out
    }

    /// Number of points inside `rect` without materialising them.
    pub fn window_count(&self, rect: &Rect) -> usize {
        let mut n = 0usize;
        self.window_for_each(rect, |_| n += 1);
        n
    }

    /// Visits the id of every point inside `rect`.
    pub fn window_for_each<F: FnMut(u32)>(&self, rect: &Rect, mut f: F) {
        self.window_each_rec(0, self.order.len(), 0, rect, &mut f);
    }

    /// The nearest point to `q` as `(id, squared distance)`, or `None` for
    /// an empty tree.
    pub fn nearest(&self, q: Point) -> Option<(u32, f64)> {
        if self.pts.is_empty() {
            return None;
        }
        let mut best = (u32::MAX, f64::INFINITY);
        self.nearest_rec(0, self.order.len(), 0, q, &mut best);
        Some(best)
    }

    /// The `k` nearest points to `q`, closest first, as `(id, squared
    /// distance)` pairs. Ties at the k-th distance are broken arbitrarily.
    pub fn k_nearest(&self, q: Point, k: usize) -> Vec<(u32, f64)> {
        if k == 0 || self.pts.is_empty() {
            return Vec::new();
        }
        // `heap` holds the current k best in "worst first" order; k is
        // small in all our workloads, so an insertion-sorted vector beats
        // a real heap.
        let mut heap: Vec<(f64, u32)> = Vec::with_capacity(k + 1);
        self.knn_rec(0, self.order.len(), 0, q, k, &mut heap);
        heap.sort_by(|a, b| a.0.total_cmp(&b.0));
        heap.into_iter().map(|(d, i)| (i, d)).collect()
    }

    fn window_each_rec<F: FnMut(u32)>(
        &self,
        lo: usize,
        hi: usize,
        axis: usize,
        rect: &Rect,
        f: &mut F,
    ) {
        if lo >= hi {
            return;
        }
        let mid = lo + (hi - lo) / 2;
        let id = self.order[mid];
        let p = self.pts[id as usize];
        if rect.contains_point(p) {
            f(id);
        }
        let c = coord(p, axis);
        let (rect_lo, rect_hi) = if axis == 0 {
            (rect.min.x, rect.max.x)
        } else {
            (rect.min.y, rect.max.y)
        };
        if rect_lo <= c {
            self.window_each_rec(lo, mid, 1 - axis, rect, f);
        }
        if rect_hi >= c {
            self.window_each_rec(mid + 1, hi, 1 - axis, rect, f);
        }
    }

    fn nearest_rec(&self, lo: usize, hi: usize, axis: usize, q: Point, best: &mut (u32, f64)) {
        if lo >= hi {
            return;
        }
        let mid = lo + (hi - lo) / 2;
        let id = self.order[mid];
        let p = self.pts[id as usize];
        let d = p.dist_sq(q);
        if d < best.1 {
            *best = (id, d);
        }
        let diff = coord(q, axis) - coord(p, axis);
        let (near_lo, near_hi, far_lo, far_hi) = if diff <= 0.0 {
            (lo, mid, mid + 1, hi)
        } else {
            (mid + 1, hi, lo, mid)
        };
        self.nearest_rec(near_lo, near_hi, 1 - axis, q, best);
        // Only cross the splitting line if the best ball straddles it.
        if diff * diff < best.1 {
            self.nearest_rec(far_lo, far_hi, 1 - axis, q, best);
        }
    }

    fn knn_rec(
        &self,
        lo: usize,
        hi: usize,
        axis: usize,
        q: Point,
        k: usize,
        heap: &mut Vec<(f64, u32)>,
    ) {
        if lo >= hi {
            return;
        }
        let mid = lo + (hi - lo) / 2;
        let id = self.order[mid];
        let p = self.pts[id as usize];
        let d = p.dist_sq(q);
        if heap.len() < k {
            // Keep "worst first" order by inserting at the right spot.
            let pos = heap
                .iter()
                .position(|&(hd, _)| hd < d)
                .unwrap_or(heap.len());
            heap.insert(pos, (d, id));
        // vaq-lint: allow(panic-hygiene) -- `k_nearest` returns early for
        // k == 0, so when len >= k here the heap holds at least one entry.
        } else if d < heap[0].0 {
            // vaq-lint: allow(panic-hygiene) -- same k >= 1 invariant as
            // the condition above.
            heap[0] = (d, id);
            let mut i = 0;
            while i + 1 < heap.len() && heap[i].0 < heap[i + 1].0 {
                heap.swap(i, i + 1);
                i += 1;
            }
        }
        let diff = coord(q, axis) - coord(p, axis);
        let (near_lo, near_hi, far_lo, far_hi) = if diff <= 0.0 {
            (lo, mid, mid + 1, hi)
        } else {
            (mid + 1, hi, lo, mid)
        };
        self.knn_rec(near_lo, near_hi, 1 - axis, q, k, heap);
        let worst = if heap.len() < k {
            f64::INFINITY
        } else {
            // vaq-lint: allow(panic-hygiene) -- len >= k and k >= 1
            // (`k_nearest` returns early for k == 0).
            heap[0].0
        };
        if diff * diff < worst {
            self.knn_rec(far_lo, far_hi, 1 - axis, q, k, heap);
        }
    }
}

/// Recursively arranges `order[..]` so the median (by the axis coordinate)
/// sits in the middle with smaller-coordinate points before it.
fn build_rec(pts: &[Point], order: &mut [u32], axis: usize) {
    if order.len() <= 1 {
        return;
    }
    let mid = order.len() / 2;
    order.select_nth_unstable_by(mid, |&a, &b| {
        coord(pts[a as usize], axis)
            .total_cmp(&coord(pts[b as usize], axis))
            .then(a.cmp(&b))
    });
    let (left, right) = order.split_at_mut(mid);
    build_rec(pts, left, 1 - axis);
    // vaq-lint: allow(panic-hygiene) -- `right` starts at the median
    // element (mid < order.len()), so it is never empty.
    build_rec(pts, &mut right[1..], 1 - axis);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| p(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn brute_window(pts: &[Point], r: &Rect) -> Vec<u32> {
        let mut v: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, q)| r.contains_point(**q))
            .map(|(i, _)| i as u32)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_and_single() {
        let t = KdTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.nearest(p(0.0, 0.0)), None);
        assert!(t.window(&Rect::new(p(0.0, 0.0), p(1.0, 1.0))).is_empty());

        let t = KdTree::build(&[p(0.5, 0.5)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.nearest(p(0.0, 0.0)), Some((0, 0.5)));
        assert_eq!(t.window(&Rect::new(p(0.0, 0.0), p(1.0, 1.0))), vec![0]);
        assert_eq!(t.window_count(&Rect::new(p(0.6, 0.6), p(1.0, 1.0))), 0);
    }

    #[test]
    fn window_matches_brute_force() {
        let pts = uniform(700, 41);
        let t = KdTree::build(&pts);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let c = p(rng.gen::<f64>(), rng.gen::<f64>());
            let r = Rect::from_center(c, rng.gen::<f64>() * 0.4, rng.gen::<f64>() * 0.4);
            let mut got = t.window(&r);
            got.sort_unstable();
            assert_eq!(got, brute_window(&pts, &r));
            assert_eq!(t.window_count(&r), got.len());
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = uniform(500, 43);
        let t = KdTree::build(&pts);
        let mut rng = StdRng::seed_from_u64(44);
        for _ in 0..300 {
            let q = p(rng.gen::<f64>() * 1.4 - 0.2, rng.gen::<f64>() * 1.4 - 0.2);
            let (_, d) = t.nearest(q).unwrap();
            let want = pts
                .iter()
                .map(|s| s.dist_sq(q))
                .fold(f64::INFINITY, f64::min);
            assert_eq!(d, want, "q = {q}");
        }
    }

    #[test]
    fn k_nearest_matches_brute_force() {
        let pts = uniform(250, 45);
        let t = KdTree::build(&pts);
        let mut rng = StdRng::seed_from_u64(46);
        for _ in 0..60 {
            let q = p(rng.gen::<f64>(), rng.gen::<f64>());
            let k = rng.gen_range(1..25usize);
            let got: Vec<f64> = t.k_nearest(q, k).iter().map(|&(_, d)| d).collect();
            let mut want: Vec<f64> = pts.iter().map(|s| s.dist_sq(q)).collect();
            want.sort_by(f64::total_cmp);
            want.truncate(k);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn k_nearest_with_k_exceeding_len() {
        let pts = uniform(5, 47);
        let t = KdTree::build(&pts);
        assert_eq!(t.k_nearest(p(0.5, 0.5), 50).len(), 5);
        assert!(t.k_nearest(p(0.5, 0.5), 0).is_empty());
    }

    #[test]
    fn duplicate_points_all_reported() {
        let pts = vec![p(0.5, 0.5), p(0.5, 0.5), p(0.5, 0.5), p(0.9, 0.9)];
        let t = KdTree::build(&pts);
        let mut got = t.window(&Rect::from_center(p(0.5, 0.5), 0.1, 0.1));
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
        let mut nn3: Vec<u32> = t
            .k_nearest(p(0.5, 0.5), 3)
            .iter()
            .map(|&(i, _)| i)
            .collect();
        nn3.sort_unstable();
        assert_eq!(nn3, vec![0, 1, 2]);
    }

    #[test]
    fn collinear_points() {
        let pts: Vec<Point> = (0..20).map(|i| p(f64::from(i), 0.0)).collect();
        let t = KdTree::build(&pts);
        let (id, _) = t.nearest(p(7.4, 3.0)).unwrap();
        assert_eq!(id, 7);
        let r = Rect::new(p(3.0, -1.0), p(6.0, 1.0));
        let mut got = t.window(&r);
        got.sort_unstable();
        assert_eq!(got, brute_window(&pts, &r));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        #[test]
        fn prop_queries_match_brute(seed in 0u64..3000, n in 1usize..200) {
            let pts = uniform(n, seed);
            let t = KdTree::build(&pts);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xF0F0);
            for _ in 0..6 {
                let c = p(rng.gen::<f64>(), rng.gen::<f64>());
                let r = Rect::from_center(c, rng.gen::<f64>() * 0.5, rng.gen::<f64>() * 0.5);
                let mut got = t.window(&r);
                got.sort_unstable();
                proptest::prop_assert_eq!(got, brute_window(&pts, &r));
                let q = p(rng.gen::<f64>(), rng.gen::<f64>());
                let (_, d) = t.nearest(q).unwrap();
                let want = pts.iter().map(|s| s.dist_sq(q)).fold(f64::INFINITY, f64::min);
                proptest::prop_assert_eq!(d, want);
                let k = 1 + (seed as usize % 7);
                let got_k: Vec<f64> = t.k_nearest(q, k).iter().map(|&(_, d)| d).collect();
                let mut want_k: Vec<f64> = pts.iter().map(|s| s.dist_sq(q)).collect();
                want_k.sort_by(f64::total_cmp);
                want_k.truncate(k);
                proptest::prop_assert_eq!(got_k, want_k);
            }
        }
    }
}
