//! # voronoi-area-query — umbrella crate
//!
//! Re-exports the full stack of the reproduction of *Area Queries Based on
//! Voronoi Diagrams* (ICDE 2020) under one roof, so examples and
//! integration tests can `use voronoi_area_query::...` without naming the
//! individual workspace crates.
//!
//! See the repository README for the architecture overview, DESIGN.md for
//! the system inventory, and EXPERIMENTS.md for paper-vs-measured results.

#![forbid(unsafe_code)]

pub use vaq_core as core;
pub use vaq_delaunay as delaunay;
pub use vaq_geom as geom;
pub use vaq_kdtree as kdtree;
pub use vaq_quadtree as quadtree;
pub use vaq_rtree as rtree;
pub use vaq_viz as viz;
pub use vaq_workload as workload;
