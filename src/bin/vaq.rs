//! `vaq` — command-line area queries over CSV point sets.
//!
//! ```text
//! vaq query --points pts.csv --area "POLYGON ((0 0, 1 0, 0.5 1))" [--method voronoi|traditional|both] [--count]
//! vaq info  --points pts.csv
//! vaq svg   --points pts.csv --area "POLYGON (…)" --out scene.svg
//! ```
//!
//! * `query` prints matching point indices (or just the count with
//!   `--count`) and per-method statistics to stderr. `--prepared`
//!   query-compiles the area first (slab + edge-grid indexes; identical
//!   results, faster per-candidate validation on large areas).
//! * `info` prints dataset statistics: extent, Delaunay/Voronoi facts.
//! * `svg` renders the query scene (points, result, redundant candidates,
//!   area outline) to an SVG file.
//!
//! The area accepts WKT `POLYGON`, including interior rings (holes);
//! `--area-file` reads the WKT from a file instead.

use std::fs;
use std::process::ExitCode;
use voronoi_area_query::core::{AreaQueryEngine, PointClass};
use voronoi_area_query::geom::{PreparedRegion, Region};
use voronoi_area_query::viz::candidate_scene;
use voronoi_area_query::workload::io::{points_from_csv, region_from_wkt};

struct Options {
    command: String,
    points_path: Option<String>,
    area_wkt: Option<String>,
    method: String,
    count_only: bool,
    prepared: bool,
    out: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or(USAGE)?;
    let mut o = Options {
        command,
        points_path: None,
        area_wkt: None,
        method: String::from("voronoi"),
        count_only: false,
        prepared: false,
        out: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--points" => o.points_path = Some(args.next().ok_or("--points needs a path")?),
            "--area" => o.area_wkt = Some(args.next().ok_or("--area needs WKT")?),
            "--area-file" => {
                let path = args.next().ok_or("--area-file needs a path")?;
                let text =
                    fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
                o.area_wkt = Some(text);
            }
            "--method" => o.method = args.next().ok_or("--method needs a value")?,
            "--count" => o.count_only = true,
            "--prepared" => o.prepared = true,
            "--out" => o.out = Some(args.next().ok_or("--out needs a path")?),
            other => return Err(format!("unknown argument: {other}\n{USAGE}")),
        }
    }
    Ok(o)
}

const USAGE: &str = "usage: vaq <query|info|svg> --points FILE.csv \
[--area WKT | --area-file FILE] [--method voronoi|traditional|both] [--count] [--prepared] \
[--out FILE.svg]";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let o = parse_args()?;
    let points_path = o.points_path.as_deref().ok_or("--points is required")?;
    let csv =
        fs::read_to_string(points_path).map_err(|e| format!("cannot read {points_path}: {e}"))?;
    let points = points_from_csv(&csv).map_err(|e| format!("{points_path}: {e}"))?;
    if points.is_empty() {
        return Err(format!("{points_path}: no points"));
    }

    match o.command.as_str() {
        "info" => info(&points),
        "query" => {
            let area = required_area(&o)?;
            query(&points, &area, &o.method, o.count_only, o.prepared)
        }
        "svg" => {
            let area = required_area(&o)?;
            let out = o.out.as_deref().ok_or("svg requires --out FILE.svg")?;
            svg(&points, &area, out)
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

fn required_area(o: &Options) -> Result<Region, String> {
    let wkt = o
        .area_wkt
        .as_deref()
        .ok_or("--area or --area-file is required")?;
    let region = region_from_wkt(wkt).map_err(|e| format!("bad area WKT: {e}"))?;
    region
        .validate_nesting()
        .map_err(|e| format!("bad area rings: {e}"))?;
    Ok(region)
}

fn info(points: &[voronoi_area_query::geom::Point]) -> Result<(), String> {
    let engine = AreaQueryEngine::build(points);
    let tri = engine.triangulation().expect("non-empty input");
    let bbox = voronoi_area_query::geom::Rect::from_points(points.iter().copied());
    println!("points:            {}", points.len());
    println!("unique points:     {}", tri.vertex_count());
    println!(
        "extent:            [{}, {}] x [{}, {}]",
        bbox.min.x, bbox.max.x, bbox.min.y, bbox.max.y
    );
    println!("delaunay edges:    {}", tri.edge_count());
    println!("delaunay triangles:{}", tri.triangle_count());
    println!("hull vertices:     {}", tri.hull().len());
    println!("degenerate (line): {}", tri.is_degenerate());
    let mean_degree = 2.0 * tri.edge_count() as f64 / tri.vertex_count().max(1) as f64;
    println!("mean voronoi deg:  {mean_degree:.2}");
    Ok(())
}

fn query(
    points: &[voronoi_area_query::geom::Point],
    area: &Region,
    method: &str,
    count_only: bool,
    prepared: bool,
) -> Result<(), String> {
    let engine = AreaQueryEngine::build(points);
    let run_voronoi = matches!(method, "voronoi" | "both");
    let run_traditional = matches!(method, "traditional" | "both");
    if !run_voronoi && !run_traditional {
        return Err(format!(
            "unknown method {method:?} (voronoi|traditional|both)"
        ));
    }
    // Query-compiled area: identical results, per-candidate containment
    // and segment tests answered from the prepared indexes.
    let prep = prepared.then(|| PreparedRegion::new(area.clone()));
    let mut printed = false;
    if run_voronoi {
        let r = match &prep {
            Some(p) => engine.voronoi(p),
            None => engine.voronoi(area),
        };
        eprintln!(
            "voronoi:     {} results, {} candidates, {} redundant validations",
            r.stats.result_size,
            r.stats.candidates,
            r.stats.redundant_validations()
        );
        emit(&r.sorted_indices(), count_only, &mut printed);
    }
    if run_traditional {
        let r = match &prep {
            Some(p) => engine.traditional(p),
            None => engine.traditional(area),
        };
        eprintln!(
            "traditional: {} results, {} candidates, {} redundant validations",
            r.stats.result_size,
            r.stats.candidates,
            r.stats.redundant_validations()
        );
        emit(&r.sorted_indices(), count_only, &mut printed);
    }
    Ok(())
}

/// Prints the result once (both methods return the same set under
/// `--method both`).
fn emit(indices: &[u32], count_only: bool, printed: &mut bool) {
    if *printed {
        return;
    }
    *printed = true;
    if count_only {
        println!("{}", indices.len());
    } else {
        let mut out = String::with_capacity(indices.len() * 7);
        for id in indices {
            out.push_str(&id.to_string());
            out.push('\n');
        }
        print!("{out}");
    }
}

fn svg(points: &[voronoi_area_query::geom::Point], area: &Region, out: &str) -> Result<(), String> {
    let engine = AreaQueryEngine::build(points);
    let r = engine.voronoi(area);
    // Redundant candidates for the overlay: boundary-class points.
    let tri = engine.triangulation().expect("non-empty input");
    let classes = engine.classify(area).expect("non-empty input");
    let mut candidates = r.indices.clone();
    for (v, class) in classes.iter().enumerate() {
        if *class == PointClass::Boundary {
            candidates.extend_from_slice(tri.inputs_of(v as u32));
        }
    }
    let world =
        voronoi_area_query::geom::Rect::from_points(points.iter().copied()).union(&area.mbr());
    let margin = (world.width().max(world.height())) * 0.05;
    let scene = candidate_scene(
        world.expand(margin),
        800.0,
        points,
        area.outer(),
        &r.indices,
        &candidates,
    );
    fs::write(out, scene).map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!(
        "wrote {out}: {} results, {} candidates highlighted",
        r.stats.result_size,
        candidates.len()
    );
    Ok(())
}
