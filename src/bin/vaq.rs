//! `vaq` — command-line area queries over CSV point sets.
//!
//! ```text
//! vaq query --points pts.csv --area "POLYGON ((0 0, 1 0, 0.5 1))" [--method voronoi|traditional|brute|both] [--count]
//! vaq query --points pts.csv --window 0.2,0.2,0.8,0.8
//! vaq query --points pts.csv --area "POLYGON (…)" --knn 5 --at 0.5,0.5
//! vaq query --points pts.csv --area "POLYGON (…)" --payload-bytes 1024
//! vaq info  --points pts.csv
//! vaq svg   --points pts.csv --area "POLYGON (…)" --out scene.svg
//! ```
//!
//! Every query runs through the engine's unified surface: the flags build
//! a `QuerySpec` (method / prepare mode / output shape) and a
//! `QuerySession` executes it.
//!
//! * `query` prints matching point indices (or just the count with
//!   `--count`) and per-method statistics to stderr. `--method auto`
//!   hands the choice of method, expansion policy and prepare mode to
//!   the engine's cost-model planner (add `--verbose` to see the chosen
//!   plan; `--policy` and `--prepared` conflict with it and are
//!   rejected). `--policy segment|cell` pins the Voronoi expansion
//!   policy. `--prepared`
//!   query-compiles the area first (slab + edge-grid indexes; identical
//!   results, faster per-candidate validation on large areas).
//!   `--shards N` partitions the points into N spatial shards (parallel
//!   per-shard index builds, MBR shard pruning at query time) — same
//!   indices, per-shard statistics; `--shards auto` picks one shard per
//!   hardware thread. `--threads N|auto` routes the query through the
//!   batch executor's work-stealing worker pool (`auto`, like `0`, picks
//!   one worker per hardware thread); results are bit-identical to the
//!   in-line path. `--knn K --at X,Y` answers the kNN-within-area
//!   query (the K matches nearest to the origin, exact distances, ties
//!   by index); `--payload-bytes N` attaches an N-byte simulated payload
//!   record to every point and materialises each matching record
//!   (printing the fold of the record checksums).
//! * `info` prints dataset statistics: extent, Delaunay/Voronoi facts.
//! * `svg` renders the query scene (points, result, redundant candidates,
//!   area outline) to an SVG file.
//!
//! The area is either WKT `POLYGON` (including interior rings / holes;
//! `--area-file` reads the WKT from a file) or `--window X0,Y0,X1,Y1` — a
//! plain axis-aligned rectangle, the classic window query, served by the
//! same engine and session.
//!
//! `--weights FILE|uniform:R` builds the engine over **weighted sites**
//! (the power-diagram form — see the README's "Generalized diagrams"
//! section): `FILE` holds one weight per line, parallel to the points
//! CSV; `uniform:R` gives every site the same radius `R` (weight `R²`),
//! which normalises away to the plain Euclidean engine, bit-identically.
//! Results are identical either way — a site's weight shapes its cell
//! and the traversal, never its membership in the area.

use std::fs;
use std::path::Path;
use std::process::ExitCode;
use voronoi_area_query::core::snapshot;
use voronoi_area_query::core::AreaQueryEngine;
use voronoi_area_query::core::{
    ExecutionPlan, ExpansionPolicy, LoadedEngine, MethodChoice, OutputMode, PointClass,
    PrepareMode, QueryArea, QueryMethod, QuerySpec, ShardedAreaQueryEngine,
};
use voronoi_area_query::delaunay::{weights_are_uniform, DiagramKind};
use voronoi_area_query::geom::{Point, Polygon, Rect, Region};
use voronoi_area_query::viz::candidate_scene;
use voronoi_area_query::workload::io::{points_from_csv, region_from_wkt};

struct Options {
    command: String,
    points_path: Option<String>,
    area_wkt: Option<String>,
    window: Option<String>,
    method: String,
    /// `None` = the spec's default policy; `Some` = forced by `--policy`.
    policy: Option<String>,
    count_only: bool,
    prepared: bool,
    verbose: bool,
    /// `None` = unsharded; `Some(0)` = auto-tune to the hardware.
    shards: Option<usize>,
    /// `None` = in-line execution; `Some(0)` = auto-tune to the
    /// hardware; `Some(n)` = run through the batch executor with `n`
    /// worker threads.
    threads: Option<usize>,
    knn: Option<usize>,
    at: Option<String>,
    payload_bytes: usize,
    /// `--weights FILE|uniform:R` — site weights for the power-diagram
    /// engine, validated before the build.
    weights: Option<String>,
    out: Option<String>,
    /// `vaq build --save FILE` — write the built engine as a snapshot.
    save: Option<String>,
    /// `vaq query --load FILE` — serve from a snapshot instead of
    /// building; build-time flags are cross-checked against the file.
    load: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or(USAGE)?;
    let mut o = Options {
        command,
        points_path: None,
        area_wkt: None,
        window: None,
        method: String::from("voronoi"),
        policy: None,
        count_only: false,
        prepared: false,
        verbose: false,
        shards: None,
        threads: None,
        knn: None,
        at: None,
        payload_bytes: 0,
        weights: None,
        out: None,
        save: None,
        load: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--points" => o.points_path = Some(args.next().ok_or("--points needs a path")?),
            "--area" => o.area_wkt = Some(args.next().ok_or("--area needs WKT")?),
            "--area-file" => {
                let path = args.next().ok_or("--area-file needs a path")?;
                let text =
                    fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
                o.area_wkt = Some(text);
            }
            "--window" => o.window = Some(args.next().ok_or("--window needs X0,Y0,X1,Y1")?),
            "--method" => o.method = args.next().ok_or("--method needs a value")?,
            "--policy" => o.policy = Some(args.next().ok_or("--policy needs segment|cell")?),
            "--count" => o.count_only = true,
            "--prepared" => o.prepared = true,
            "--verbose" => o.verbose = true,
            "--shards" => {
                let v = args.next().ok_or("--shards needs a count or 'auto'")?;
                o.shards = Some(if v == "auto" {
                    0 // the engine auto-tunes to available parallelism
                } else {
                    v.parse::<usize>().ok().filter(|&s| s >= 1).ok_or_else(|| {
                        format!("bad --shards count {v:?} (need an integer >= 1, or 'auto')")
                    })?
                });
            }
            "--threads" => {
                let v = args
                    .next()
                    .ok_or("--threads needs a worker count or 'auto'")?;
                o.threads = Some(if v == "auto" {
                    0 // resolved to available parallelism, like --shards auto
                } else {
                    v.parse::<usize>().map_err(|_| {
                        format!(
                            "bad --threads count {v:?} \
(need a non-negative integer or 'auto'; 0 means auto)"
                        )
                    })?
                });
            }
            "--knn" => {
                let v = args.next().ok_or("--knn needs a neighbour count")?;
                o.knn =
                    Some(v.parse::<usize>().map_err(|_| {
                        format!("bad --knn count {v:?} (need a non-negative integer)")
                    })?);
            }
            "--at" => o.at = Some(args.next().ok_or("--at needs X,Y")?),
            "--payload-bytes" => {
                let v = args.next().ok_or("--payload-bytes needs a size")?;
                o.payload_bytes = v.parse::<usize>().map_err(|_| {
                    format!("bad --payload-bytes size {v:?} (need a non-negative integer)")
                })?;
            }
            "--weights" => {
                o.weights = Some(args.next().ok_or("--weights needs a path or uniform:R")?)
            }
            "--out" => o.out = Some(args.next().ok_or("--out needs a path")?),
            "--save" => o.save = Some(args.next().ok_or("--save needs a snapshot path")?),
            "--load" => o.load = Some(args.next().ok_or("--load needs a snapshot path")?),
            other => return Err(format!("unknown argument: {other}\n{USAGE}")),
        }
    }
    Ok(o)
}

const USAGE: &str = "usage: vaq <build|query|info|svg> \
[--points FILE.csv] [--load FILE.snap] [--save FILE.snap] \
[--area WKT | --area-file FILE | --window X0,Y0,X1,Y1] \
[--method auto|voronoi|traditional|brute|both] [--policy segment|cell] \
[--count] [--prepared] [--verbose] \
[--shards N|auto] [--threads N|auto] [--knn K --at X,Y] [--payload-bytes N] \
[--weights FILE|uniform:R] [--out FILE.svg]
  build requires --points and --save: it builds the engine (plain, or \
sharded with --shards) and writes a snapshot.
  query/info accept --load FILE.snap to serve from a snapshot instead of \
building; --points/--shards/--weights/--payload-bytes passed alongside \
--load are cross-checked against the snapshot's contents.";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let o = parse_args()?;
    if o.save.is_some() && o.command != "build" {
        return Err(String::from(
            "--save belongs to the build command (`vaq build --points ... --save FILE`)",
        ));
    }
    if o.load.is_some() && !matches!(o.command.as_str(), "query" | "info") {
        return Err(String::from(
            "--load belongs to the query and info commands",
        ));
    }
    // `--load` serves the snapshot's own point set, so the CSV becomes
    // optional there (and is cross-checked when given anyway).
    let points = match o.points_path.as_deref() {
        Some(points_path) => {
            let csv = fs::read_to_string(points_path)
                .map_err(|e| format!("cannot read {points_path}: {e}"))?;
            let points = points_from_csv(&csv).map_err(|e| format!("{points_path}: {e}"))?;
            if points.is_empty() {
                return Err(format!("{points_path}: no points"));
            }
            Some(points)
        }
        None => None,
    };
    let require_points = || {
        points
            .clone()
            .ok_or_else(|| String::from("--points is required"))
    };

    match o.command.as_str() {
        "build" => build_snapshot(&require_points()?, &o),
        "info" => match o.load.as_deref() {
            Some(path) => snapshot_info(path),
            None => info(&require_points()?),
        },
        "query" => {
            let area = required_area(&o)?;
            match o.load.as_deref() {
                Some(path) => query_loaded(path, points.as_deref(), &area, &o),
                None => {
                    let points = require_points()?;
                    if o.shards.is_some() {
                        query_sharded(&points, &area, &o)
                    } else {
                        query(&points, &area, &o)
                    }
                }
            }
        }
        "svg" => {
            let area = required_area(&o)?;
            let out = o.out.as_deref().ok_or("svg requires --out FILE.svg")?;
            svg(&require_points()?, &area, out)
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

/// The query area: a WKT region or an axis-aligned window rectangle.
enum CliArea {
    Region(Region),
    Window(Rect),
}

impl CliArea {
    /// The area as a dynamic [`QueryArea`] for the session funnel.
    fn as_query_area(&self) -> &dyn QueryArea {
        match self {
            CliArea::Region(r) => r,
            CliArea::Window(w) => w,
        }
    }

    /// The outline polygon (for SVG rendering).
    fn outline(&self) -> Polygon {
        match self {
            CliArea::Region(r) => r.outer().clone(),
            CliArea::Window(w) => Polygon::new_unchecked(w.corners().to_vec()),
        }
    }
}

fn required_area(o: &Options) -> Result<CliArea, String> {
    if o.area_wkt.is_some() && o.window.is_some() {
        return Err(String::from("--area and --window are mutually exclusive"));
    }
    if let Some(spec) = o.window.as_deref() {
        return Ok(CliArea::Window(parse_window(spec)?));
    }
    let wkt = o
        .area_wkt
        .as_deref()
        .ok_or("--area, --area-file or --window is required")?;
    let region = region_from_wkt(wkt).map_err(|e| format!("bad area WKT: {e}"))?;
    region
        .validate_nesting()
        .map_err(|e| format!("bad area rings: {e}"))?;
    Ok(CliArea::Region(region))
}

/// Parses `X0,Y0,X1,Y1` into a valid query window: all coordinates
/// finite, `X0 < X1` and `Y0 < Y1`. Flipped or zero-extent windows are
/// rejected rather than silently normalised — they almost always mean a
/// typo, and a zero-area window has no interior to seed the Voronoi
/// method with.
fn parse_window(spec: &str) -> Result<Rect, String> {
    let nums: Vec<f64> = spec
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<f64>()
                .map_err(|_| format!("bad --window coordinate {:?}", s.trim()))
        })
        .collect::<Result<_, _>>()?;
    if nums.len() != 4 {
        return Err(format!(
            "--window needs four comma-separated numbers, got {}",
            nums.len()
        ));
    }
    if let Some(v) = nums.iter().find(|v| !v.is_finite()) {
        return Err(format!(
            "--window coordinates must be finite, got {v} in {spec:?}"
        ));
    }
    let [x0, y0, x1, y1] = nums[..] else {
        unreachable!("length checked above");
    };
    if x0 >= x1 || y0 >= y1 {
        return Err(format!(
            "--window needs X0 < X1 and Y0 < Y1, got {spec:?} \
(a flipped or zero-extent window is almost always a typo)"
        ));
    }
    Ok(Rect::new(Point::new(x0, y0), Point::new(x1, y1)))
}

/// Resolves `--weights FILE|uniform:R` into one validated weight per
/// point. Weights are rejected *here*, before the engine build, so a
/// NaN weight or a miscounted file gets a diagnostic instead of a
/// panic — the same philosophy as [`parse_window`]. Negative weights
/// are legitimate power-diagram inputs and pass through.
fn parse_weights(spec: &str, n_points: usize) -> Result<Vec<f64>, String> {
    if let Some(radius) = spec.strip_prefix("uniform:") {
        let r: f64 = radius.trim().parse().map_err(|_| {
            format!(
                "bad --weights radius {:?} (need a number, e.g. uniform:0.1)",
                radius.trim()
            )
        })?;
        if !r.is_finite() || r < 0.0 {
            return Err(format!(
                "--weights uniform radius must be finite and non-negative, got {r} \
(the radius is the distance the site's cell reaches, so a negative one has no meaning)"
            ));
        }
        return Ok(vec![r * r; n_points]);
    }
    let text = fs::read_to_string(spec)
        .map_err(|e| format!("cannot read --weights {spec}: {e} (or use uniform:R)"))?;
    let mut weights = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let w: f64 = t
            .parse()
            .map_err(|_| format!("{spec}:{}: bad weight {t:?}", lineno + 1))?;
        if !w.is_finite() {
            return Err(format!(
                "{spec}:{}: weights must be finite, got {w}",
                lineno + 1
            ));
        }
        weights.push(w);
    }
    if weights.len() != n_points {
        return Err(format!(
            "--weights {spec} holds {} weights for {} points (need exactly one per point, \
in the points CSV's order)",
            weights.len(),
            n_points
        ));
    }
    Ok(weights)
}

fn info(points: &[Point]) -> Result<(), String> {
    let engine = AreaQueryEngine::build(points);
    let tri = engine.triangulation().expect("non-empty input");
    let bbox = Rect::from_points(points.iter().copied());
    println!("points:            {}", points.len());
    println!("unique points:     {}", tri.vertex_count());
    println!(
        "extent:            [{}, {}] x [{}, {}]",
        bbox.min.x, bbox.max.x, bbox.min.y, bbox.max.y
    );
    println!("delaunay edges:    {}", tri.edge_count());
    println!("delaunay triangles:{}", tri.triangle_count());
    println!("hull vertices:     {}", tri.hull().len());
    println!("degenerate (line): {}", tri.is_degenerate());
    let mean_degree = 2.0 * tri.edge_count() as f64 / tri.vertex_count().max(1) as f64;
    println!("mean voronoi deg:  {mean_degree:.2}");
    Ok(())
}

/// Maps the `--method` flag to the specs to run (shared by the single
/// and sharded paths). `auto` defers the choice to the cost-model
/// planner per query.
fn parse_methods(method: &str) -> Result<&'static [(&'static str, MethodChoice)], String> {
    match method {
        "auto" => Ok(&[("auto", MethodChoice::Auto)]),
        "voronoi" => Ok(&[("voronoi", MethodChoice::Fixed(QueryMethod::Voronoi))]),
        "traditional" => Ok(&[("traditional", MethodChoice::Fixed(QueryMethod::Traditional))]),
        "brute" => Ok(&[("brute", MethodChoice::Fixed(QueryMethod::BruteForce))]),
        "both" => Ok(&[
            ("voronoi", MethodChoice::Fixed(QueryMethod::Voronoi)),
            ("traditional", MethodChoice::Fixed(QueryMethod::Traditional)),
        ]),
        other => Err(format!(
            "unknown method {other:?} (auto|voronoi|traditional|brute|both)"
        )),
    }
}

/// Parses `--policy segment|cell` into the expansion policy.
fn parse_policy(policy: &str) -> Result<ExpansionPolicy, String> {
    match policy {
        "segment" => Ok(ExpansionPolicy::Segment),
        "cell" => Ok(ExpansionPolicy::Cell),
        other => Err(format!("unknown --policy {other:?} (segment|cell)")),
    }
}

/// `--method auto` owns every strategy knob the planner decides; forcing
/// one by hand alongside it is a contradiction, not a preference.
fn reject_auto_conflicts(o: &Options) -> Result<(), String> {
    if o.method != "auto" {
        return Ok(());
    }
    if o.policy.is_some() {
        return Err(String::from(
            "--method auto picks the expansion policy per query; \
drop --policy (or pin the method to use it)",
        ));
    }
    if o.prepared {
        return Err(String::from(
            "--method auto decides when preparing the area pays off; \
drop --prepared (or pin the method to force it)",
        ));
    }
    Ok(())
}

/// With `--verbose`, prints the planner's recorded decision for a
/// `--method auto` query.
fn print_plan(name: &str, plan: Option<&ExecutionPlan>) {
    let Some(plan) = plan else {
        return;
    };
    eprintln!(
        "{name}:{pad} plan {:?} / {:?} / {:?} / {:?} \
(predicted {:.0} work units, {:.0} candidates)",
        plan.method,
        plan.policy,
        plan.prepare,
        plan.shard_pruning,
        plan.predicted_cost,
        plan.predicted_candidates,
        pad = " ".repeat(11usize.saturating_sub(name.len())),
    );
}

/// Parses `--at X,Y` into the kNN origin.
fn parse_at(spec: &str) -> Result<Point, String> {
    let nums: Vec<f64> = spec
        .split(',')
        .map(|t| {
            t.trim()
                .parse::<f64>()
                .map_err(|_| format!("bad --at coordinate {:?}", t.trim()))
        })
        .collect::<Result<_, _>>()?;
    let [x, y] = nums[..] else {
        return Err(format!(
            "--at needs two comma-separated numbers, got {}",
            nums.len()
        ));
    };
    if !x.is_finite() || !y.is_finite() {
        return Err(format!("--at coordinates must be finite, got {spec:?}"));
    }
    Ok(Point::new(x, y))
}

/// Resolves the `--knn` / `--payload-bytes` flags into the spec's output
/// mode (collect by default).
fn output_mode_for(o: &Options) -> Result<OutputMode, String> {
    match o.knn {
        Some(_) if o.payload_bytes > 0 => Err(String::from(
            "--knn and --payload-bytes are mutually exclusive (a kNN answer \
has no per-record payload to print)",
        )),
        Some(k) => {
            let at =
                o.at.as_deref()
                    .ok_or("--knn needs --at X,Y (the origin distances are measured from)")?;
            Ok(OutputMode::TopKNearest {
                k,
                origin: parse_at(at)?,
            })
        }
        None if o.at.is_some() => Err(String::from("--at is only meaningful with --knn K")),
        None if o.payload_bytes > 0 => Ok(OutputMode::Materialize),
        None => Ok(OutputMode::Collect),
    }
}

/// Resolves `--threads` (0 = auto) to a concrete worker count and
/// reports it, mirroring the sharded path's engine summary line.
fn resolve_cli_threads(threads: usize) -> usize {
    let workers = voronoi_area_query::core::sync::resolve_threads(threads);
    eprintln!("batch executor: {workers} worker thread(s)");
    workers
}

/// Builds the unsharded engine from the CLI's build-time flags
/// (payload, weights); shared by `query` and `vaq build --save`.
fn build_plain_engine(points: &[Point], o: &Options) -> Result<AreaQueryEngine, String> {
    let mut builder = AreaQueryEngine::builder(points).payload_bytes(o.payload_bytes);
    let weights = o
        .weights
        .as_deref()
        .map(|spec| parse_weights(spec, points.len()))
        .transpose()?;
    if let Some(w) = &weights {
        builder = builder.weights(w);
    }
    let engine = builder.build();
    if weights.is_some() {
        let hidden = engine
            .triangulation()
            .map_or(0, |tri| tri.hidden_vertices().len());
        eprintln!(
            "diagram: {:?} ({hidden} hidden site(s))",
            engine.diagram_kind()
        );
    }
    Ok(engine)
}

fn query(points: &[Point], area: &CliArea, o: &Options) -> Result<(), String> {
    let engine = build_plain_engine(points, o)?;
    run_query_specs(&engine, area, o)
}

/// The execution half of the unsharded path: runs every requested
/// method over an engine that is already built (or snapshot-loaded).
fn run_query_specs(engine: &AreaQueryEngine, area: &CliArea, o: &Options) -> Result<(), String> {
    let methods = parse_methods(&o.method)?;
    reject_auto_conflicts(o)?;
    let output = output_mode_for(o)?;
    let workers = o.threads.map(resolve_cli_threads);
    let mut session = engine.session();
    // One spec per requested method; `--prepared` query-compiles the area
    // (identical results, per-candidate containment and segment tests
    // answered from the prepared indexes). `Cached` rather than
    // `PrepareOnce` so `--method both` compiles the area once and the
    // second method hits the session cache.
    let mut base = QuerySpec::new()
        .prepare(if o.prepared {
            PrepareMode::Cached
        } else {
            PrepareMode::Raw
        })
        .output(output);
    if let Some(policy) = o.policy.as_deref() {
        base = base.policy(parse_policy(policy)?);
    }
    let mut printed = false;
    for &(name, m) in methods {
        let spec = base.method(m);
        let out = match workers {
            // The single-area batch exercises the same claim-counter
            // worker pool as a real batch; results are bit-identical to
            // the in-line session path.
            Some(workers) => {
                let mut outs = match area {
                    CliArea::Region(r) => {
                        engine.execute_batch(&spec, std::slice::from_ref(r), workers)
                    }
                    CliArea::Window(w) => {
                        engine.execute_batch(&spec, std::slice::from_ref(w), workers)
                    }
                };
                outs.pop().ok_or("batch executor returned no output")?
            }
            None => session.execute(&spec, area.as_query_area()),
        };
        let stats = out.stats();
        if o.verbose {
            print_plan(name, stats.plan.as_ref());
        }
        eprintln!(
            "{name}:{pad} {} results, {} candidates, {} redundant validations",
            stats.result_size,
            stats.candidates,
            stats.redundant_validations(),
            pad = " ".repeat(11usize.saturating_sub(name.len())),
        );
        // vaq-lint: allow(sink-dispatch) -- presentation only: the CLI
        // decides which summary lines to print for the mode it itself
        // requested; execution already went through the sink layer.
        if matches!(output, OutputMode::Materialize) {
            eprintln!(
                "{name}:{pad} payload checksum {:#018x} ({} bytes/record)",
                stats.payload_checksum,
                o.payload_bytes,
                pad = " ".repeat(11usize.saturating_sub(name.len())),
            );
        }
        if let Some(neighbors) = out.neighbors() {
            emit_neighbors(
                &neighbors
                    .iter()
                    .map(|n| (u64::from(n.id), n.dist_sq))
                    .collect::<Vec<_>>(),
                o.count_only,
                &mut printed,
            );
        } else {
            let r = out.result().expect("collect-shaped query");
            emit(&r.sorted_indices(), o.count_only, &mut printed);
        }
    }
    Ok(())
}

/// `--shards N|auto`: partition the points into N spatial shards, build
/// the per-shard engines in parallel, and answer with MBR shard pruning.
/// Results (and the printed indices) are bit-identical to the unsharded
/// path; `--payload-bytes` gives every shard its slice of one logical
/// record store.
fn query_sharded(points: &[Point], area: &CliArea, o: &Options) -> Result<(), String> {
    let engine = build_sharded_engine(points, o)?;
    run_sharded_specs(&engine, area, o)
}

/// Builds the sharded engine from the CLI's build-time flags; shared by
/// `query --shards` and `vaq build --shards --save`.
fn build_sharded_engine(points: &[Point], o: &Options) -> Result<ShardedAreaQueryEngine, String> {
    let shards = o.shards.unwrap_or(1);
    Ok(match o.weights.as_deref() {
        Some(spec) => {
            let w = parse_weights(spec, points.len())?;
            ShardedAreaQueryEngine::build_weighted_with_payload(points, &w, shards, o.payload_bytes)
        }
        None => ShardedAreaQueryEngine::build_with_payload(points, shards, o.payload_bytes),
    })
}

/// The execution half of the sharded path, over a built or
/// snapshot-loaded engine.
fn run_sharded_specs(
    engine: &ShardedAreaQueryEngine,
    area: &CliArea,
    o: &Options,
) -> Result<(), String> {
    let methods = parse_methods(&o.method)?;
    reject_auto_conflicts(o)?;
    let output = output_mode_for(o)?;
    eprintln!(
        "sharded engine: {} shards over {} points (shard sizes {:?}, {:?} diagram)",
        engine.shard_count(),
        engine.len(),
        engine.shard_sizes(),
        engine.diagram_kind(),
    );
    let workers = o.threads.map(resolve_cli_threads);
    // The sharded engine has no cross-query cache, so `--prepared`
    // compiles the area once *here* and every method (and every shard)
    // runs on the same compiled form — the single-engine path gets the
    // same effect from its session cache.
    let prepared_area = if o.prepared {
        area.as_query_area().prepare()
    } else {
        None
    };
    let run_area: &dyn QueryArea = match &prepared_area {
        Some(prep) => prep.as_ref(),
        None => area.as_query_area(),
    };
    let mut base = QuerySpec::new().output(output);
    if let Some(policy) = o.policy.as_deref() {
        base = base.policy(parse_policy(policy)?);
    }
    let mut printed = false;
    for &(name, m) in methods {
        let out = match workers {
            // Batch-executor route: preparation is handled by the batch
            // itself (PrepareMode::Cached compiles each distinct area
            // once per batch), so the raw concrete area goes in.
            Some(workers) => {
                let spec = base.method(m).prepare(if o.prepared {
                    PrepareMode::Cached
                } else {
                    PrepareMode::Raw
                });
                let mut outs = match area {
                    CliArea::Region(r) => {
                        engine.execute_batch(&spec, std::slice::from_ref(r), workers)
                    }
                    CliArea::Window(w) => {
                        engine.execute_batch(&spec, std::slice::from_ref(w), workers)
                    }
                };
                outs.pop().ok_or("batch executor returned no output")?
            }
            None => engine.execute(&base.method(m), run_area),
        };
        if o.verbose {
            print_plan(name, out.stats.plan.as_ref());
        }
        eprintln!(
            "{name}:{pad} {} results, {} candidates, {} redundant validations \
[{} of {} shards visited, {} pruned]",
            out.stats.result_size,
            out.stats.candidates,
            out.stats.redundant_validations(),
            out.stats.shards_visited,
            engine.shard_count(),
            out.stats.shards_pruned,
            pad = " ".repeat(11usize.saturating_sub(name.len())),
        );
        // vaq-lint: allow(sink-dispatch) -- presentation only, as in the
        // single-engine summary above.
        if matches!(output, OutputMode::Materialize) {
            eprintln!(
                "{name}:{pad} payload checksum {:#018x} ({} bytes/record)",
                out.stats.payload_checksum,
                o.payload_bytes,
                pad = " ".repeat(11usize.saturating_sub(name.len())),
            );
        }
        // vaq-lint: allow(sink-dispatch) -- presentation only: neighbour
        // output is printed exactly when the user asked for --knn.
        if matches!(output, OutputMode::TopKNearest { .. }) {
            emit_neighbors(
                &out.neighbors
                    .iter()
                    .map(|n| (u64::from(n.id), n.dist_sq))
                    .collect::<Vec<_>>(),
                o.count_only,
                &mut printed,
            );
        } else {
            emit(&out.indices, o.count_only, &mut printed);
        }
    }
    Ok(())
}

/// `vaq build --points FILE --save FILE.snap [--shards N] [--weights …]
/// [--payload-bytes N]`: builds the engine once and writes it as a
/// snapshot, so later `vaq query --load` invocations reach their first
/// answer without rebuilding the Voronoi substrate.
fn build_snapshot(points: &[Point], o: &Options) -> Result<(), String> {
    let save = o
        .save
        .as_deref()
        .ok_or("build requires --save FILE.snap (where to write the snapshot)")?;
    if o.shards.is_some() {
        let engine = build_sharded_engine(points, o)?;
        eprintln!(
            "built sharded engine: {} shards over {} points ({:?} diagram)",
            engine.shard_count(),
            engine.len(),
            engine.diagram_kind(),
        );
        snapshot::save_sharded(&engine, Path::new(save))
            .map_err(|e| format!("cannot save {save}: {e}"))?;
    } else {
        let engine = build_plain_engine(points, o)?;
        snapshot::save_engine(&engine, Path::new(save))
            .map_err(|e| format!("cannot save {save}: {e}"))?;
    }
    let info =
        snapshot::inspect(Path::new(save)).map_err(|e| format!("cannot inspect {save}: {e}"))?;
    eprintln!(
        "wrote {save}: {} snapshot, {} bytes, {} section(s), rev {}",
        info.kind, info.file_len, info.sections, info.git_revision
    );
    Ok(())
}

/// `vaq info --load FILE.snap`: prints the snapshot's header facts
/// (validated — a corrupt or truncated file is a diagnostic here too).
fn snapshot_info(path: &str) -> Result<(), String> {
    let info =
        snapshot::inspect(Path::new(path)).map_err(|e| format!("cannot inspect {path}: {e}"))?;
    println!("snapshot:          {path}");
    println!("kind:              {}", info.kind);
    println!("format version:    {}", info.version);
    println!("file size:         {} bytes", info.file_len);
    println!("sections:          {}", info.sections);
    println!("written at rev:    {}", info.git_revision);
    println!("writer build:      {}", info.build_params);
    Ok(())
}

/// `vaq query --load FILE.snap`: serves the query from a snapshot.
/// Build-time flags passed alongside `--load` cannot change a loaded
/// engine, so each one is cross-checked against what the snapshot
/// actually holds and a mismatch is a diagnostic, not a silent
/// difference.
fn query_loaded(
    path: &str,
    points: Option<&[Point]>,
    area: &CliArea,
    o: &Options,
) -> Result<(), String> {
    let loaded =
        snapshot::load(Path::new(path)).map_err(|e| format!("cannot load snapshot {path}: {e}"))?;
    match loaded {
        LoadedEngine::Plain(engine) => {
            check_loaded_consistency(
                path,
                engine.len(),
                engine.diagram_kind(),
                None,
                engine.record_store().map(|r| r.record_bytes()),
                points,
                o,
            )?;
            eprintln!(
                "loaded {path}: plain engine, {} points ({:?} diagram)",
                engine.len(),
                engine.diagram_kind(),
            );
            run_query_specs(&engine, area, o)
        }
        LoadedEngine::Sharded(engine) => {
            check_loaded_consistency(
                path,
                engine.len(),
                engine.diagram_kind(),
                Some(engine.shard_count()),
                engine.payload_record_bytes(),
                points,
                o,
            )?;
            eprintln!("loaded {path}: sharded engine");
            run_sharded_specs(&engine, area, o)
        }
        LoadedEngine::Dynamic(_) => Err(format!(
            "{path} holds a dynamic engine snapshot; the CLI serves plain and sharded \
snapshots (load it programmatically with vaq_core::snapshot::load_dynamic)"
        )),
    }
}

/// The `--load` consistency diagnostics: every build-time flag passed
/// alongside `--load` must agree with the snapshot.
fn check_loaded_consistency(
    path: &str,
    len: usize,
    diagram: DiagramKind,
    shard_count: Option<usize>,
    record_bytes: Option<usize>,
    points: Option<&[Point]>,
    o: &Options,
) -> Result<(), String> {
    if let Some(pts) = points {
        if pts.len() != len {
            return Err(format!(
                "--points holds {} points but {path} indexes {len}; a loaded engine \
serves its own point set, so drop --points or rebuild the snapshot",
                pts.len()
            ));
        }
    }
    match (o.shards, shard_count) {
        (Some(_), None) => {
            return Err(format!(
                "--shards conflicts with {path}: the snapshot holds an unsharded engine \
(sharding is a build-time property; rebuild with `vaq build --shards ... --save`)"
            ))
        }
        (Some(n), Some(have)) if n != 0 && n != have => {
            return Err(format!(
                "--shards {n} conflicts with {path}: the snapshot was built with {have} \
shard(s) (drop --shards or rebuild the snapshot)"
            ))
        }
        _ => {}
    }
    if let Some(spec) = o.weights.as_deref() {
        let w = parse_weights(spec, len)?;
        let want = if weights_are_uniform(&w) {
            DiagramKind::Euclidean
        } else {
            DiagramKind::Power
        };
        if want != diagram {
            return Err(format!(
                "--weights {spec} implies a {want:?} diagram but {path} holds a {diagram:?} \
one (weights are baked in at build time; rebuild with `vaq build --weights ... --save`)"
            ));
        }
    }
    if o.payload_bytes > 0 {
        match record_bytes {
            Some(b) if b == o.payload_bytes => {}
            Some(b) => {
                return Err(format!(
                    "--payload-bytes {} conflicts with {path}: the snapshot's records are \
{b} bytes each (payloads are baked in at build time)",
                    o.payload_bytes
                ))
            }
            None => {
                return Err(format!(
                    "--payload-bytes conflicts with {path}: the snapshot was built without \
payload records (rebuild with `vaq build --payload-bytes ... --save`)"
                ))
            }
        }
    }
    Ok(())
}

/// Prints the result once (all methods return the same set under
/// `--method both`).
fn emit(indices: &[u32], count_only: bool, printed: &mut bool) {
    if *printed {
        return;
    }
    *printed = true;
    if count_only {
        println!("{}", indices.len());
    } else {
        let mut out = String::with_capacity(indices.len() * 7);
        for id in indices {
            out.push_str(&id.to_string());
            out.push('\n');
        }
        print!("{out}");
    }
}

/// Prints the kNN answer once: `index distance` per line, nearest first
/// (ties by index), or just the neighbour count under `--count`.
fn emit_neighbors(neighbors: &[(u64, f64)], count_only: bool, printed: &mut bool) {
    if *printed {
        return;
    }
    *printed = true;
    if count_only {
        println!("{}", neighbors.len());
        return;
    }
    let mut out = String::with_capacity(neighbors.len() * 24);
    for &(id, dist_sq) in neighbors {
        out.push_str(&format!("{id} {dist}\n", dist = dist_sq.sqrt()));
    }
    print!("{out}");
}

fn svg(points: &[Point], area: &CliArea, out: &str) -> Result<(), String> {
    let engine = AreaQueryEngine::build(points);
    let query_area = area.as_query_area();
    let r = engine
        .execute(&QuerySpec::voronoi(), query_area)
        .into_result()
        .expect("collect-mode query");
    // Redundant candidates for the overlay: boundary-class points.
    let tri = engine.triangulation().expect("non-empty input");
    let classes = engine.classify(query_area).expect("non-empty input");
    let mut candidates = r.indices.clone();
    for (v, class) in classes.iter().enumerate() {
        if *class == PointClass::Boundary {
            candidates.extend_from_slice(tri.inputs_of(v as u32));
        }
    }
    let world = Rect::from_points(points.iter().copied()).union(&query_area.mbr());
    let margin = (world.width().max(world.height())) * 0.05;
    let outline = area.outline();
    let scene = candidate_scene(
        world.expand(margin),
        800.0,
        points,
        &outline,
        &r.indices,
        &candidates,
    );
    fs::write(out, scene).map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!(
        "wrote {out}: {} results, {} candidates highlighted",
        r.stats.result_size,
        candidates.len()
    );
    Ok(())
}
