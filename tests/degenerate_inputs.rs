//! Failure injection: inputs that break naive geometry code — duplicates,
//! collinear sets, points exactly on area boundaries, areas outside the
//! data extent, minimal datasets — all through the public umbrella API.

use voronoi_area_query::core::{AreaQueryEngine, ExpansionPolicy, SeedIndex};
use voronoi_area_query::delaunay::Triangulation;
use voronoi_area_query::geom::{Point, Polygon};

fn p(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

fn square(cx: f64, cy: f64, half: f64) -> Polygon {
    Polygon::new(vec![
        p(cx - half, cy - half),
        p(cx + half, cy - half),
        p(cx + half, cy + half),
        p(cx - half, cy + half),
    ])
    .unwrap()
}

fn check_both(engine: &AreaQueryEngine, area: &Polygon, context: &str) {
    let mut want = engine.brute_force(area);
    want.sort_unstable();
    assert_eq!(
        engine.traditional(area).sorted_indices(),
        want,
        "{context} trad"
    );
    let mut scratch = engine.new_scratch();
    for policy in [ExpansionPolicy::Segment, ExpansionPolicy::Cell] {
        assert_eq!(
            engine
                .voronoi_with(area, policy, SeedIndex::RTree, &mut scratch)
                .sorted_indices(),
            want,
            "{context} voronoi {policy:?}"
        );
    }
}

#[test]
fn heavy_duplication() {
    // 70 % of points are duplicates of a handful of locations.
    let mut pts = Vec::new();
    for i in 0..30 {
        pts.push(p(
            f64::from(i % 6) / 6.0 + 0.05,
            f64::from(i % 5) / 5.0 + 0.05,
        ));
    }
    for _ in 0..70 {
        pts.push(p(0.35, 0.25));
        pts.push(p(0.55, 0.45));
    }
    let engine = AreaQueryEngine::build(&pts);
    check_both(&engine, &square(0.4, 0.3, 0.2), "duplicates");
    // All 70 copies of an in-area duplicate are reported.
    let r = engine.voronoi(&square(0.35, 0.25, 0.01));
    assert_eq!(r.stats.result_size, 70);
}

#[test]
fn fully_collinear_dataset() {
    let pts: Vec<Point> = (0..100).map(|i| p(f64::from(i) / 100.0, 0.4)).collect();
    let engine = AreaQueryEngine::build(&pts);
    assert!(engine.triangulation().unwrap().is_degenerate());
    check_both(&engine, &square(0.5, 0.4, 0.15), "collinear horizontal");
    // Vertical line too (exercises the lexicographic path order).
    let pts: Vec<Point> = (0..100).map(|i| p(0.6, f64::from(i) / 100.0)).collect();
    let engine = AreaQueryEngine::build(&pts);
    check_both(&engine, &square(0.6, 0.5, 0.2), "collinear vertical");
}

#[test]
fn points_exactly_on_area_vertices_and_edges() {
    // The query area's vertices and edge midpoints are data points: the
    // area query is closed, so all of them are results.
    let area = Polygon::new(vec![p(0.2, 0.2), p(0.8, 0.2), p(0.8, 0.8), p(0.2, 0.8)]).unwrap();
    let mut pts: Vec<Point> = area.vertices().to_vec();
    pts.push(p(0.5, 0.2)); // edge midpoint
    pts.push(p(0.2, 0.5)); // edge midpoint
    pts.push(p(0.5, 0.5)); // interior
    pts.push(p(0.1, 0.1)); // outside
    pts.push(p(0.9, 0.9)); // outside
    let engine = AreaQueryEngine::build(&pts);
    let mut want: Vec<u32> = (0..7).collect();
    want.sort_unstable();
    assert_eq!(engine.traditional(&area).sorted_indices(), want);
    assert_eq!(engine.voronoi(&area).sorted_indices(), want);
}

#[test]
fn area_far_outside_the_data() {
    let pts: Vec<Point> = (0..50)
        .map(|i| p(f64::from(i % 8) / 8.0, f64::from(i / 8) / 8.0))
        .collect();
    let engine = AreaQueryEngine::build(&pts);
    let far = square(50.0, 50.0, 1.0);
    assert!(engine.traditional(&far).indices.is_empty());
    assert!(engine.voronoi(&far).indices.is_empty());
}

#[test]
fn area_engulfing_all_data() {
    let pts: Vec<Point> = (0..200)
        .map(|i| p(f64::from(i % 20) / 20.0, f64::from(i / 20) / 10.0))
        .collect();
    let engine = AreaQueryEngine::build(&pts);
    let all = square(0.5, 0.5, 10.0);
    assert_eq!(engine.voronoi(&all).stats.result_size, 200);
    assert_eq!(
        engine.voronoi(&all).stats.redundant_validations(),
        0,
        "every candidate is internal when the area covers everything"
    );
}

#[test]
fn minimal_datasets() {
    for n in 1..6usize {
        let pts: Vec<Point> = (0..n)
            .map(|i| p(0.2 + 0.15 * i as f64, 0.3 + 0.1 * (i % 2) as f64))
            .collect();
        let engine = AreaQueryEngine::build(&pts);
        check_both(&engine, &square(0.3, 0.3, 0.25), &format!("n={n}"));
    }
}

#[test]
fn needle_thin_query_areas() {
    // A sliver of width 1e-6 crossing the whole space; candidate ring far
    // exceeds the (likely empty) result.
    let pts: Vec<Point> = (0..400)
        .map(|i| {
            p(
                f64::from(i % 20) / 20.0 + 0.025,
                f64::from(i / 20) / 20.0 + 0.025,
            )
        })
        .collect();
    let engine = AreaQueryEngine::build(&pts);
    let sliver = Polygon::new(vec![
        p(0.0, 0.5),
        p(1.0, 0.5),
        p(1.0, 0.500001),
        p(0.0, 0.500001),
    ])
    .unwrap();
    check_both(&engine, &sliver, "sliver");
}

#[test]
fn triangulation_duplicate_bookkeeping_roundtrip() {
    // inputs_of ∘ canonical is the identity partition.
    let pts = vec![
        p(0.1, 0.1),
        p(0.5, 0.5),
        p(0.1, 0.1),
        p(0.9, 0.1),
        p(0.5, 0.5),
        p(0.1, 0.9),
    ];
    let tri = Triangulation::new(&pts).unwrap();
    let mut seen = vec![false; pts.len()];
    for v in 0..tri.vertex_count() as u32 {
        for &i in tri.inputs_of(v) {
            assert_eq!(tri.canonical(i as usize), v);
            assert!(!seen[i as usize], "input {i} mapped twice");
            seen[i as usize] = true;
        }
    }
    assert!(seen.iter().all(|&s| s));
}
