//! Differential test of the sharded segment-expansion completeness fix.
//!
//! PR-5 documented a completeness gap: per-shard segment expansion runs
//! on the *shard's* triangulation, where the long Delaunay edges that
//! cross a shard cut are missing. An area pocket whose only expansion
//! chain rode such an edge was silently dropped (≈8 of ~55k results on a
//! 2·10⁵-point × 8-shard × 64-area sweep), so the sharded engine used to
//! forbid `ExpansionPolicy::Segment`. The fix flags every shard vertex
//! whose Voronoi cell pokes outside the shard MBR at build time and, when
//! a segment test fails on such a frontier vertex, falls back to the
//! exact cell test for that one edge.
//!
//! Two angles:
//!
//! * a deterministic two-cluster reproduction where the naive
//!   per-partition union *provably* drops a pocket (asserting the test is
//!   sharp) while the fixed sharded engine stays exact, and
//! * a randomized sweep (uniform points × 8 shards × star polygons)
//!   asserting the fixed engine matches brute force bit for bit under
//!   `Segment`.

use voronoi_area_query::core::{
    AreaQueryEngine, ExpansionPolicy, QuerySpec, ShardedAreaQueryEngine,
};
use voronoi_area_query::geom::{Point, Polygon};
use voronoi_area_query::workload::{
    generate, random_query_polygon, unit_space, Distribution, PolygonSpec,
};

fn p(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

/// Two 5×5 grids with a wide empty channel between them. A kd cut at the
/// median x puts each grid in its own shard, severing every left↔right
/// Delaunay edge.
fn two_clusters() -> Vec<Point> {
    let mut pts = Vec::with_capacity(50);
    for grid_x0 in [0.0, 0.6] {
        for j in 0..5 {
            for i in 0..5 {
                pts.push(p(grid_x0 + i as f64 / 10.0, j as f64 / 10.0));
            }
        }
    }
    pts
}

/// A C-shape over the right grid: two horizontal prongs (covering the
/// rows y = 0.0 and y = 0.4) joined by a thin connector strip at
/// x ∈ [0.52, 0.56] that contains **no points**. In the full
/// triangulation the connector is crossed by left↔right edges, so
/// segment expansion hops between the prongs; in the right shard alone
/// no edge touches the connector and one prong is unreachable.
fn c_shape() -> Polygon {
    Polygon::new(vec![
        p(0.52, -0.05),
        p(1.05, -0.05),
        p(1.05, 0.05),
        p(0.56, 0.05),
        p(0.56, 0.35),
        p(1.05, 0.35),
        p(1.05, 0.45),
        p(0.52, 0.45),
    ])
    .unwrap()
}

/// The old sharded behaviour, emulated: partition the points by hand,
/// run plain per-partition engines (which carry no shard-frontier flags)
/// under `Segment`, and union the mapped indices.
fn naive_partition_union(
    points: &[Point],
    partitions: &[Vec<u32>],
    spec: &QuerySpec,
    area: &Polygon,
) -> Vec<u32> {
    let mut out = Vec::new();
    for part in partitions {
        let sub: Vec<Point> = part.iter().map(|&i| points[i as usize]).collect();
        let engine = AreaQueryEngine::build(&sub);
        let local = engine.execute(spec, area);
        out.extend(
            local
                .result()
                .expect("collect output")
                .indices
                .iter()
                .map(|&l| part[l as usize]),
        );
    }
    out.sort_unstable();
    out
}

#[test]
fn frontier_fallback_recovers_the_dropped_pocket() {
    let points = two_clusters();
    let area = c_shape();
    let spec = QuerySpec::voronoi().policy(ExpansionPolicy::Segment);

    let full = AreaQueryEngine::build(&points);
    let want = {
        let mut v = full.brute_force(&area);
        v.sort_unstable();
        v
    };
    // Both prongs hold a full grid row of the right cluster.
    assert_eq!(want.len(), 10, "the C-shape covers two 5-point rows");

    // The unsharded engine is complete here: the connector strip is
    // crossed by left↔right Delaunay edges.
    assert_eq!(
        full.execute(&spec, &area)
            .result()
            .unwrap()
            .sorted_indices(),
        want,
        "unsharded Segment must be complete on the C-shape"
    );

    // Old behaviour: per-partition Segment expansion drops a prong —
    // the naive union is strictly short. This is the sharpness check:
    // the scenario really exercises the gap.
    let partitions: Vec<Vec<u32>> = vec![(0..25).collect(), (25..50).collect()];
    let naive = naive_partition_union(&points, &partitions, &spec, &area);
    assert!(
        naive.len() < want.len(),
        "the naive per-partition union should drop a pocket \
(found {naive:?}, want {want:?}) — if this starts passing, the \
scenario no longer reproduces the PR-5 gap"
    );

    // Fixed behaviour: the sharded engine's frontier fallback recovers
    // every dropped point, bit for bit.
    let sharded = ShardedAreaQueryEngine::build(&points, 2);
    assert_eq!(sharded.shard_count(), 2);
    let out = sharded.execute(&spec, &area);
    assert_eq!(out.indices, want, "sharded Segment must match brute force");
    // The recovery is visible in the counters: cell tests fired even
    // though the policy is Segment.
    assert!(
        out.stats.cell_tests > 0,
        "the frontier fallback should have run cell tests: {:?}",
        out.stats
    );
}

/// A single-shard engine has no cut, so no frontier flags and no
/// fallback cell tests: bit-identical behaviour to the plain engine,
/// counters included.
#[test]
fn single_shard_runs_no_fallback() {
    let points = two_clusters();
    let area = c_shape();
    let spec = QuerySpec::voronoi().policy(ExpansionPolicy::Segment);
    let plain = AreaQueryEngine::build(&points).execute(&spec, &area);
    let sharded = ShardedAreaQueryEngine::build(&points, 1).execute(&spec, &area);
    assert_eq!(
        sharded.indices,
        plain.result().unwrap().sorted_indices(),
        "one shard ≡ plain"
    );
    assert_eq!(sharded.stats.cell_tests, plain.stats().cell_tests);
    assert_eq!(sharded.stats.segment_tests, plain.stats().segment_tests);
}

/// The randomized sweep the PR-5 caveat was measured on, scaled to test
/// time: uniform points × 8 shards × star polygons of mixed sizes.
/// Under the fallback, sharded `Segment` matches brute force exactly on
/// every area.
#[test]
fn sharded_segment_matches_brute_on_random_sweep() {
    let points = generate(20_000, Distribution::Uniform, 0x5E6);
    let full = AreaQueryEngine::build(&points);
    let sharded = ShardedAreaQueryEngine::build(&points, 8);
    assert_eq!(sharded.shard_count(), 8);
    let spec = QuerySpec::voronoi().policy(ExpansionPolicy::Segment);
    let space = unit_space();
    let mut total = 0usize;
    for i in 0..64u64 {
        let size = match i % 3 {
            0 => 0.01,
            1 => 0.05,
            _ => 0.15,
        };
        let area = random_query_polygon(&space, &PolygonSpec::with_query_size(size), 5000 + i);
        let mut want = full.brute_force(&area);
        want.sort_unstable();
        let got = sharded.execute(&spec, &area);
        assert_eq!(got.indices, want, "area {i} (query size {size})");
        total += want.len();
    }
    assert!(total > 10_000, "the sweep should cover plenty of results");
}
