//! Differential suite for the **power-diagram** (weighted-site) engine
//! stack, in two halves:
//!
//! 1. **Uniform weights are free**: an engine built with any uniform
//!    weight vector (including all-zero) must be **bit-identical** to
//!    the unweighted Euclidean engine — same sorted indices *and* the
//!    same full [`QueryStats`] — on the plain, batch, dynamic and
//!    sharded paths. A uniform weight shifts every power distance by
//!    one constant, so the diagram it induces *is* the Euclidean one;
//!    the builders normalise it away and this suite pins that.
//!
//! 2. **Weighted answers are exact**: with genuinely distinct weights
//!    the result of an area query is still "every point inside the
//!    area" (a site's weight shifts its *cell*, never its membership),
//!    so every path must match the brute-force membership oracle —
//!    including *hidden* sites (dominated everywhere, owning no cell),
//!    duplicate coordinates with distinct weights, and the power
//!    nearest-site oracle for the seed walk. The cell expansion policy
//!    is exact on power diagrams; the segment heuristic is additionally
//!    exercised on benign (small-weight) inputs.

use voronoi_area_query::core::{
    AreaQueryEngine, DynamicAreaQueryEngine, ExpansionPolicy, FilterIndex, OutputMode, PrepareMode,
    QueryArea, QueryMethod, QuerySpec, SeedIndex, ShardedAreaQueryEngine,
};
use voronoi_area_query::delaunay::DiagramKind;
use voronoi_area_query::geom::{Point, Polygon, Rect};
use voronoi_area_query::workload::{
    generate, generate_weights, random_query_polygon, unit_space, Distribution, PolygonSpec,
    WeightDistribution,
};

fn p(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

/// All input indices whose point lies in the area, ascending — the
/// method-free oracle (weights never change membership).
fn membership_oracle(pts: &[Point], area: &dyn QueryArea) -> Vec<u32> {
    pts.iter()
        .enumerate()
        .filter(|&(_, q)| area.contains(*q))
        .map(|(i, _)| i as u32)
        .collect()
}

fn areas_for(seed: u64) -> Vec<Polygon> {
    let space = unit_space();
    vec![
        random_query_polygon(&space, &PolygonSpec::with_query_size(0.05), seed),
        random_query_polygon(&space, &PolygonSpec::with_query_size(0.2), seed ^ 0xA5),
        // Tiny area: often inside one cell, exercises the seed refine.
        random_query_polygon(&space, &PolygonSpec::with_query_size(0.002), seed ^ 0x5A),
    ]
}

/// The spec grid both halves sweep: methods × seeds × prepare modes,
/// with the (exact-on-any-diagram) cell expansion policy.
fn cell_grid() -> Vec<QuerySpec> {
    let mut specs = Vec::new();
    for method in [
        QueryMethod::Voronoi,
        QueryMethod::Traditional,
        QueryMethod::BruteForce,
    ] {
        for seed in [SeedIndex::RTree, SeedIndex::DelaunayWalk] {
            for prepare in [PrepareMode::Raw, PrepareMode::Cached] {
                specs.push(
                    QuerySpec::new()
                        .method(method)
                        .filter(FilterIndex::RTree)
                        .seed(seed)
                        .policy(ExpansionPolicy::Cell)
                        .prepare(prepare),
                );
            }
        }
    }
    specs
}

// ---------------------------------------------------------------------
// Half 1: uniform weights are bit-identical to Euclidean.
// ---------------------------------------------------------------------

#[test]
fn uniform_weights_are_bit_identical_on_the_plain_engine() {
    let pts = generate(400, Distribution::Uniform, 0x11E1);
    let plain = AreaQueryEngine::build(&pts);
    for c in [0.0f64, 2.5] {
        let weighted = AreaQueryEngine::build_weighted(&pts, &vec![c; pts.len()]);
        assert_eq!(weighted.diagram_kind(), DiagramKind::Euclidean);
        for area in areas_for(0xE0) {
            for (si, spec) in cell_grid().iter().enumerate() {
                let a = plain.execute(spec, &area);
                let b = weighted.execute(spec, &area);
                assert_eq!(a.stats(), b.stats(), "w={c}, spec {si}");
                assert_eq!(
                    a.result().map(|r| r.sorted_indices()),
                    b.result().map(|r| r.sorted_indices()),
                    "w={c}, spec {si}"
                );
            }
            // Segment policy and count mode ride the same identity.
            let seg = QuerySpec::new().policy(ExpansionPolicy::Segment);
            assert_eq!(
                plain.execute(&seg, &area).stats(),
                weighted.execute(&seg, &area).stats(),
                "w={c} segment"
            );
            let cnt = QuerySpec::new().output(OutputMode::Count);
            let (a, b) = (plain.execute(&cnt, &area), weighted.execute(&cnt, &area));
            assert_eq!(a.count(), b.count(), "w={c} count");
            assert_eq!(a.stats(), b.stats(), "w={c} count stats");
        }
    }
}

#[test]
fn uniform_weights_are_bit_identical_on_the_batch_path() {
    let pts = generate(500, Distribution::Uniform, 0x11E2);
    let plain = AreaQueryEngine::build(&pts);
    let weighted = AreaQueryEngine::build_weighted(&pts, &vec![1.25; pts.len()]);
    let areas = areas_for(0xE1);
    for spec in [
        QuerySpec::new(),
        QuerySpec::new().prepare(PrepareMode::Cached),
    ] {
        let a = plain.execute_batch(&spec, &areas, 3);
        let b = weighted.execute_batch(&spec, &areas, 3);
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.stats(), y.stats(), "area {i}");
            assert_eq!(
                x.result().map(|r| r.sorted_indices()),
                y.result().map(|r| r.sorted_indices()),
                "area {i}"
            );
        }
    }
}

#[test]
fn uniform_weights_are_bit_identical_on_the_dynamic_path() {
    let pts = generate(300, Distribution::Uniform, 0x11E3);
    let mut plain = DynamicAreaQueryEngine::new(&pts);
    let mut weighted = DynamicAreaQueryEngine::with_weights(&pts, &vec![0.75; pts.len()]);
    let extra = generate(80, Distribution::Uniform, 0x11E4);
    for &q in &extra {
        assert_eq!(plain.insert(q), weighted.insert_weighted(q, 0.75));
    }
    for id in [3u64, 77, 310, 355] {
        assert!(plain.remove(id));
        assert!(weighted.remove(id));
    }
    let areas = areas_for(0xE2);
    for area in &areas {
        for spec in [QuerySpec::new(), QuerySpec::voronoi()] {
            let a = plain.execute(&spec, area);
            let b = weighted.execute(&spec, area);
            assert_eq!(a.ids, b.ids);
            assert_eq!(a.stats, b.stats);
        }
    }
    // Compaction folds the (still uniform) weights back into a
    // Euclidean rebuild, bit-identically.
    plain.compact();
    weighted.compact();
    for area in &areas {
        let a = plain.execute(&QuerySpec::new(), area);
        let b = weighted.execute(&QuerySpec::new(), area);
        assert_eq!(a.ids, b.ids);
        assert_eq!(a.stats, b.stats);
    }
}

#[test]
fn uniform_weights_are_bit_identical_on_the_sharded_path() {
    let pts = generate(600, Distribution::Uniform, 0x11E5);
    for shards in [1usize, 4, 7] {
        let plain = ShardedAreaQueryEngine::build(&pts, shards);
        let weighted = ShardedAreaQueryEngine::build_weighted(&pts, &vec![3.5; pts.len()], shards);
        assert_eq!(weighted.diagram_kind(), DiagramKind::Euclidean);
        for area in areas_for(0xE3) {
            for (si, spec) in cell_grid().iter().enumerate() {
                let a = plain.execute(spec, &area);
                let b = weighted.execute(spec, &area);
                assert_eq!(a.indices, b.indices, "S={shards}, spec {si}");
                assert_eq!(a.stats, b.stats, "S={shards}, spec {si}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Half 2: genuinely weighted engines match the brute-force oracle.
// ---------------------------------------------------------------------

fn clustered_weights(n: usize, seed: u64) -> Vec<f64> {
    generate_weights(
        n,
        WeightDistribution::ClusteredRadii {
            groups: 4,
            max_radius: 0.15,
            jitter: 0.3,
        },
        seed,
    )
}

#[test]
fn weighted_plain_engine_matches_the_oracle_across_the_grid() {
    let pts = generate(450, Distribution::Uniform, 0x90E1);
    let ws = clustered_weights(pts.len(), 0x90E2);
    let engine = AreaQueryEngine::build_weighted(&pts, &ws);
    assert_eq!(engine.diagram_kind(), DiagramKind::Power);
    for (ai, area) in areas_for(0xF0).iter().enumerate() {
        let want = membership_oracle(&pts, area);
        for (si, spec) in cell_grid().iter().enumerate() {
            let out = engine.execute(spec, area);
            assert_eq!(
                out.result().map(|r| r.sorted_indices()),
                Some(want.clone()),
                "area {ai}, spec {si}"
            );
            let stats = out.stats();
            assert_eq!(stats.result_size, want.len(), "area {ai}, spec {si}");
            assert_eq!(
                stats.containment_tests, stats.candidates as u64,
                "area {ai}, spec {si}: exact-validation identity"
            );
        }
        let cnt = engine.execute(
            &QuerySpec::new()
                .policy(ExpansionPolicy::Cell)
                .output(OutputMode::Count),
            area,
        );
        assert_eq!(cnt.count(), want.len(), "area {ai} count");
    }
}

/// The segment heuristic on benign weighted inputs: weights small
/// relative to the site spacing keep the power cells close to their
/// Euclidean shapes, and the heuristic's (Euclidean-grade) completeness
/// carries over.
#[test]
fn weighted_segment_policy_agrees_on_benign_inputs() {
    let pts = generate(350, Distribution::Uniform, 0x90E3);
    let ws = generate_weights(
        pts.len(),
        WeightDistribution::Uniform { max_radius: 0.005 },
        0x90E4,
    );
    let engine = AreaQueryEngine::build_weighted(&pts, &ws);
    for (ai, area) in areas_for(0xF1).iter().enumerate() {
        let want = membership_oracle(&pts, area);
        let out = engine.execute(&QuerySpec::new().policy(ExpansionPolicy::Segment), area);
        assert_eq!(
            out.result().map(|r| r.sorted_indices()),
            Some(want),
            "area {ai}"
        );
    }
}

/// A dominating site hides every interior light site; the hidden sites
/// own no cell but are still points of the database and must be
/// reported when the area contains them.
#[test]
fn hidden_sites_are_still_reported_inside_the_area() {
    let mut pts = vec![p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0), p(0.0, 1.0)];
    let mut ws = vec![0.0; 4];
    pts.push(p(0.5, 0.5)); // the dominator
    ws.push(10.0);
    let lights = [p(0.45, 0.5), p(0.55, 0.56), p(0.5, 0.42), p(0.6, 0.48)];
    for &q in &lights {
        pts.push(q);
        ws.push(0.0);
    }
    let engine = AreaQueryEngine::build_weighted(&pts, &ws);
    let tri = engine.triangulation().expect("non-empty build");
    assert!(
        !tri.hidden_vertices().is_empty(),
        "the construction must actually hide sites"
    );
    // An area holding the dominator and all light sites.
    let around = Rect::new(p(0.4, 0.38), p(0.65, 0.6));
    // An area holding *only* hidden sites (the dominator sits outside).
    let lights_only = Rect::new(p(0.42, 0.38), p(0.48, 0.52));
    for area in [&around as &dyn QueryArea, &lights_only] {
        let want = membership_oracle(&pts, area);
        assert!(!want.is_empty());
        for spec in cell_grid() {
            let out = engine.execute(&spec, area);
            assert_eq!(out.result().map(|r| r.sorted_indices()), Some(want.clone()));
        }
    }
    // Far away: hidden sites must not leak into disjoint areas.
    let far = Rect::new(p(0.05, 0.05), p(0.15, 0.15));
    let out = engine.execute(&QuerySpec::voronoi().policy(ExpansionPolicy::Cell), &far);
    assert_eq!(out.result().map(|r| r.sorted_indices()), Some(vec![]));
}

/// Duplicate coordinates with distinct weights collapse to one canonical
/// site; both input indices are still reported together.
#[test]
fn duplicate_coordinates_with_distinct_weights_report_all_inputs() {
    let mut pts = generate(60, Distribution::Uniform, 0x90E5);
    let mut ws = clustered_weights(pts.len(), 0x90E6);
    // Exact duplicates of three existing points, different weights.
    for (i, wd) in [(5usize, 0.9), (17, 0.0), (33, 0.0004)] {
        pts.push(pts[i]);
        ws.push(wd);
    }
    let engine = AreaQueryEngine::build_weighted(&pts, &ws);
    for (ai, area) in areas_for(0xF2).iter().enumerate() {
        let want = membership_oracle(&pts, area);
        for (si, spec) in cell_grid().iter().enumerate() {
            let out = engine.execute(spec, area);
            assert_eq!(
                out.result().map(|r| r.sorted_indices()),
                Some(want.clone()),
                "area {ai}, spec {si}"
            );
        }
    }
}

/// The engine's seed walk must land on the **power** nearest site —
/// checked against a brute-force power-distance argmin.
#[test]
fn nearest_vertex_matches_the_power_distance_oracle() {
    let pts = generate(200, Distribution::Uniform, 0x90E7);
    let ws = clustered_weights(pts.len(), 0x90E8);
    let engine = AreaQueryEngine::build_weighted(&pts, &ws);
    let tri = engine.triangulation().expect("non-empty build");
    let probes = generate(64, Distribution::Uniform, 0x90E9);
    for q in probes {
        let got = tri.nearest_vertex(q, None);
        let gp = tri.point(got).dist_sq(q) - tri.weight(got);
        let best = (0..pts.len())
            .map(|i| pts[i].dist_sq(q) - ws[i])
            .fold(f64::INFINITY, f64::min);
        assert!(
            gp <= best + 1e-12,
            "walk returned power {gp}, oracle found {best} at {q:?}"
        );
    }
}

#[test]
fn weighted_batch_path_matches_the_oracle() {
    let pts = generate(500, Distribution::Uniform, 0x90EA);
    let ws = clustered_weights(pts.len(), 0x90EB);
    let engine = AreaQueryEngine::build_weighted(&pts, &ws);
    let areas = areas_for(0xF3);
    for spec in [
        QuerySpec::new().policy(ExpansionPolicy::Cell),
        QuerySpec::traditional(),
    ] {
        let outs = engine.execute_batch(&spec, &areas, 2);
        for (i, (out, area)) in outs.iter().zip(&areas).enumerate() {
            let want = membership_oracle(&pts, area);
            assert_eq!(out.count(), want.len(), "area {i}");
            if let Some(r) = out.result() {
                assert_eq!(r.sorted_indices(), want, "area {i}");
            }
        }
    }
}

#[test]
fn weighted_dynamic_path_matches_the_oracle_through_compaction() {
    let pts = generate(250, Distribution::Uniform, 0x90EC);
    let ws = clustered_weights(pts.len(), 0x90ED);
    let mut eng = DynamicAreaQueryEngine::with_weights(&pts, &ws);
    let mut live: Vec<(u64, Point)> = pts
        .iter()
        .enumerate()
        .map(|(i, &q)| (i as u64, q))
        .collect();
    let extra = generate(70, Distribution::Uniform, 0x90EE);
    let extra_w = clustered_weights(extra.len(), 0x90EF);
    for (&q, &w) in extra.iter().zip(&extra_w) {
        let id = eng.insert_weighted(q, w);
        live.push((id, q));
    }
    for id in [2u64, 111, 249, 260, 301] {
        assert!(eng.remove(id));
        live.retain(|&(i, _)| i != id);
    }
    let oracle = |area: &Polygon, live: &[(u64, Point)]| -> Vec<u64> {
        let mut v: Vec<u64> = live
            .iter()
            .filter(|&&(_, q)| QueryArea::contains(area, q))
            .map(|&(id, _)| id)
            .collect();
        v.sort_unstable();
        v
    };
    let areas = areas_for(0xF4);
    for area in &areas {
        assert_eq!(
            eng.execute(&QuerySpec::new().policy(ExpansionPolicy::Cell), area)
                .ids,
            oracle(area, &live)
        );
    }
    // Compaction folds the weighted deltas into the power base.
    eng.compact();
    assert_eq!(eng.delta_len(), 0);
    for area in &areas {
        assert_eq!(
            eng.execute(&QuerySpec::new().policy(ExpansionPolicy::Cell), area)
                .ids,
            oracle(area, &live)
        );
    }
}

#[test]
fn weighted_sharded_path_matches_the_oracle_across_shard_counts() {
    let pts = generate(550, Distribution::Uniform, 0x90F0);
    let ws = clustered_weights(pts.len(), 0x90F1);
    for shards in [1usize, 3, 8] {
        let sharded = ShardedAreaQueryEngine::build_weighted(&pts, &ws, shards);
        assert_eq!(sharded.diagram_kind(), DiagramKind::Power);
        for (ai, area) in areas_for(0xF5).iter().enumerate() {
            let want = membership_oracle(&pts, area);
            for (si, spec) in cell_grid().iter().enumerate() {
                let out = sharded.execute(spec, area);
                assert_eq!(out.indices, want, "S={shards}, area {ai}, spec {si}");
                assert_eq!(
                    out.stats.shards_visited + out.stats.shards_pruned,
                    sharded.shard_count(),
                    "S={shards}, area {ai}, spec {si}: shard accounting"
                );
            }
        }
    }
}

/// The planner hedges the segment heuristic away on power diagrams: an
/// in-hull area that plans `Segment` on the Euclidean engine plans
/// `Cell` on the weighted one.
#[test]
fn auto_plans_hedge_to_cell_expansion_on_power_diagrams() {
    let pts = generate(400, Distribution::Uniform, 0x90F2);
    let ws = clustered_weights(pts.len(), 0x90F3);
    let plain = AreaQueryEngine::build(&pts);
    let weighted = AreaQueryEngine::build_weighted(&pts, &ws);
    let area = random_query_polygon(&unit_space(), &PolygonSpec::with_query_size(0.05), 0x90F4);
    let auto = QuerySpec::auto();
    let a = plain.execute(&auto, &area);
    let b = weighted.execute(&auto, &area);
    let pa = a.stats().plan.expect("auto records a plan");
    let pb = b.stats().plan.expect("auto records a plan");
    if pa.method == QueryMethod::Voronoi {
        assert_eq!(
            pa.policy,
            ExpansionPolicy::Segment,
            "Euclidean keeps segment"
        );
    }
    assert_eq!(pb.policy, ExpansionPolicy::Cell, "power hedges to cell");
    // Both still answer exactly.
    let want = membership_oracle(&pts, &area);
    assert_eq!(a.result().map(|r| r.sorted_indices()), Some(want.clone()));
    assert_eq!(b.result().map(|r| r.sorted_indices()), Some(want));
}
