//! Differential sweep of the full `QuerySpec` grid — method × filter ×
//! seed × policy × prepare × output — against the brute-force oracle, over
//! polygon, region-with-hole and rectangle (window) areas. Plus the
//! prepared-area cache contract (`Cached` ≡ `Raw`, bit for bit, with hit
//! counters) and the work-stealing batch ordering guarantee.

use voronoi_area_query::core::{
    AreaQueryEngine, CacheCounters, ExpansionPolicy, FilterIndex, OutputMode, PrepareMode,
    QueryArea, QueryMethod, QuerySpec, SeedIndex,
};
use voronoi_area_query::geom::{Point, Polygon, Rect, Region};
use voronoi_area_query::workload::{
    generate, random_query_polygon, unit_space, Distribution, PolygonSpec,
};

fn p(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

fn full_engine(n: usize, seed: u64) -> AreaQueryEngine {
    let pts = generate(n, Distribution::Uniform, seed);
    AreaQueryEngine::builder(&pts)
        .with_kdtree()
        .with_quadtree()
        .build()
}

/// Every cell of the spec grid must agree with the brute-force oracle.
fn assert_grid_agrees(engine: &AreaQueryEngine, area: &dyn QueryArea, context: &str) {
    let mut session = engine.session();
    let want = engine.brute_force(area);
    let want_sorted = {
        let mut v = want.clone();
        v.sort_unstable();
        v
    };
    for method in [
        QueryMethod::Traditional,
        QueryMethod::Voronoi,
        QueryMethod::BruteForce,
    ] {
        for filter in [
            FilterIndex::RTree,
            FilterIndex::KdTree,
            FilterIndex::Quadtree,
        ] {
            for seed in [SeedIndex::RTree, SeedIndex::KdTree, SeedIndex::DelaunayWalk] {
                for policy in [ExpansionPolicy::Segment, ExpansionPolicy::Cell] {
                    for prepare in [
                        PrepareMode::Raw,
                        PrepareMode::PrepareOnce,
                        PrepareMode::Cached,
                    ] {
                        let spec = QuerySpec::new()
                            .method(method)
                            .filter(filter)
                            .seed(seed)
                            .policy(policy)
                            .prepare(prepare)
                            .output(OutputMode::Collect);
                        let ctx = format!("{context}: {spec:?}");
                        let collected = session.execute(&spec, area);
                        assert_eq!(
                            collected.result().expect("collect output").sorted_indices(),
                            want_sorted,
                            "{ctx}"
                        );
                        let counted = session.execute(&spec.output(OutputMode::Count), area);
                        assert_eq!(counted.count(), want.len(), "{ctx} (count)");
                        // Counting is the same seeded, stats-tracked path:
                        // every counter matches the collecting run. The
                        // two how-was-it-computed fields may differ under
                        // `Cached`: the second lookup hits, and the hit
                        // reuses the prepared area's lazily-cached
                        // interior point (fewer predicate evaluations).
                        let mut a = *counted.stats();
                        let mut b = *collected.stats();
                        a.prepared_cache = CacheCounters::default();
                        b.prepared_cache = CacheCounters::default();
                        a.predicates = b.predicates;
                        assert_eq!(a, b, "{ctx} (count stats)");
                    }
                }
            }
        }
    }
    // Classification ignores method/filter/seed/policy; sweep only the
    // prepare axis.
    for prepare in [
        PrepareMode::Raw,
        PrepareMode::PrepareOnce,
        PrepareMode::Cached,
    ] {
        let spec = QuerySpec::new()
            .prepare(prepare)
            .output(OutputMode::Classify);
        let classified = session.execute(&spec, area);
        assert_eq!(
            classified.count(),
            want.len(),
            "{context} classify {prepare:?}"
        );
    }
}

#[test]
fn grid_agrees_on_star_polygons() {
    let engine = full_engine(600, 0xA11CE);
    let space = unit_space();
    for seed in 0..3u64 {
        let area = random_query_polygon(&space, &PolygonSpec::with_query_size(0.05), 40 + seed);
        assert_grid_agrees(&engine, &area, &format!("star {seed}"));
    }
}

#[test]
fn grid_agrees_on_rect_windows() {
    let engine = full_engine(500, 0xB0B);
    for (i, rect) in [
        Rect::new(p(0.2, 0.2), p(0.6, 0.7)),
        Rect::new(p(0.0, 0.0), p(1.0, 1.0)),
        Rect::new(p(0.45, 0.45), p(0.55, 0.55)),
    ]
    .iter()
    .enumerate()
    {
        assert_grid_agrees(&engine, rect, &format!("window {i}"));
    }
}

#[test]
fn grid_agrees_on_region_with_hole() {
    let engine = full_engine(500, 0xCAFE);
    let outer = Polygon::new(vec![p(0.1, 0.1), p(0.9, 0.15), p(0.85, 0.9), p(0.12, 0.8)]).unwrap();
    let hole = Polygon::new(vec![p(0.4, 0.4), p(0.6, 0.42), p(0.58, 0.6), p(0.42, 0.58)]).unwrap();
    let region = Region::new(outer, vec![hole]);
    region.validate_nesting().unwrap();
    assert_grid_agrees(&engine, &region, "region with hole");
}

/// `PrepareMode::Cached` returns bit-identical results and stats to `Raw`
/// (only the cache counters differ), and the cache reports hits on
/// repeated areas.
#[test]
fn cached_is_bit_identical_to_raw_and_hits_on_repeats() {
    let engine = full_engine(2000, 0xD1CE);
    let mut session = engine.session();
    let space = unit_space();
    let areas: Vec<Polygon> = (0..4)
        .map(|i| {
            let spec = PolygonSpec {
                vertices: 48,
                ..PolygonSpec::with_query_size(0.03)
            };
            random_query_polygon(&space, &spec, 900 + i)
        })
        .collect();
    for method in [QueryMethod::Traditional, QueryMethod::Voronoi] {
        let raw_spec = QuerySpec::new().method(method);
        let cached_spec = raw_spec.prepare(PrepareMode::Cached);
        for (i, area) in areas.iter().enumerate() {
            let raw = session.execute(&raw_spec, area);
            let first = session.execute(&cached_spec, area);
            let again = session.execute(&cached_spec, area);
            let ctx = format!("{method:?} area {i}");
            assert_eq!(
                raw.result().unwrap().indices,
                first.result().unwrap().indices,
                "{ctx}"
            );
            assert_eq!(
                raw.result().unwrap().indices,
                again.result().unwrap().indices,
                "{ctx}"
            );
            // Stats: identical except the cache counters. The cache is
            // keyed by area content (method-agnostic), so only the first
            // method's pass misses.
            let first_expected = if method == QueryMethod::Traditional {
                CacheCounters { hits: 0, misses: 1 }
            } else {
                CacheCounters { hits: 1, misses: 0 }
            };
            for (label, out, cache) in [
                ("first", &first, first_expected),
                ("again", &again, CacheCounters { hits: 1, misses: 0 }),
            ] {
                assert_eq!(out.stats().prepared_cache, cache, "{ctx} {label}");
                // Identical except the two how-was-it-computed fields:
                // cache traffic and the predicate-pipeline split (the
                // prepared area evaluates far fewer edges than raw).
                let mut scrubbed = *out.stats();
                scrubbed.prepared_cache = CacheCounters::default();
                scrubbed.predicates = raw.stats().predicates;
                assert_eq!(scrubbed, *raw.stats(), "{ctx} {label}");
                assert!(
                    out.stats().predicates.filter_fast_accepts > 0,
                    "{ctx} {label}: the filter stage never engaged"
                );
            }
        }
    }
    // 4 areas × 2 methods: every (method-agnostic) prepared area is built
    // once per first sight and hit thereafter.
    let totals = session.cache_counters();
    assert_eq!(totals.misses, 4, "one miss per distinct area");
    assert_eq!(totals.hits, 12, "every repeat is a hit");
    assert!(totals.hit_rate() > 0.7);
    assert_eq!(session.cache_len(), 4);
}

/// The work-stealing batch returns outputs in input order, matching the
/// sequential batch query-for-query (indices *and* stats).
#[test]
fn work_stealing_batch_matches_sequential_order() {
    let engine = full_engine(3000, 0xFEED);
    let space = unit_space();
    // Heavily skewed batch: tiny and huge queries interleaved, the case
    // fixed contiguous chunks handled badly.
    let areas: Vec<Polygon> = (0..24)
        .map(|i| {
            let qs = if i % 3 == 0 { 0.25 } else { 0.005 };
            random_query_polygon(&space, &PolygonSpec::with_query_size(qs), 7000 + i)
        })
        .collect();
    for spec in [
        QuerySpec::voronoi(),
        QuerySpec::traditional(),
        QuerySpec::voronoi().prepare(PrepareMode::Cached),
        QuerySpec::voronoi().output(OutputMode::Count),
    ] {
        let seq = engine.execute_batch(&spec, &areas, 1);
        assert_eq!(seq.len(), areas.len());
        for threads in [2, 3, 8, 64] {
            let par = engine.execute_batch(&spec, &areas, threads);
            assert_eq!(par.len(), seq.len(), "threads={threads}");
            for (i, (a, b)) in par.iter().zip(&seq).enumerate() {
                assert_eq!(a.count(), b.count(), "query {i}, threads={threads}");
                // Work counters are per-query deterministic; only the
                // cache counters depend on which worker saw the area
                // first.
                let mut sa = *a.stats();
                let mut sb = *b.stats();
                sa.prepared_cache = CacheCounters::default();
                sb.prepared_cache = CacheCounters::default();
                assert_eq!(sa, sb, "query {i}, threads={threads}");
                if let (Some(ra), Some(rb)) = (a.result(), b.result()) {
                    assert_eq!(ra.indices, rb.indices, "query {i}, threads={threads}");
                }
            }
        }
    }
}

/// Legacy batch wrappers and the new funnel agree query-for-query.
#[test]
fn legacy_batches_match_execute_batch() {
    let engine = full_engine(2000, 0xBEAD);
    let space = unit_space();
    let areas: Vec<Polygon> = (0..10)
        .map(|i| random_query_polygon(&space, &PolygonSpec::with_query_size(0.02), 300 + i))
        .collect();
    let new = engine.execute_batch(&QuerySpec::voronoi(), &areas, 4);
    for (legacy, threads) in [
        (engine.voronoi_batch(&areas), 1usize),
        (engine.voronoi_batch_parallel(&areas, 4), 4),
    ] {
        for (i, (l, n)) in legacy.iter().zip(&new).enumerate() {
            assert_eq!(
                l.indices,
                n.result().unwrap().indices,
                "query {i}, threads={threads}"
            );
            assert_eq!(l.stats, *n.stats(), "query {i}, threads={threads}");
        }
    }
}
