//! Batch-executor edge cases: empty batches, more workers than work,
//! single-worker runs, and thread-count invariance with per-counter
//! stats conservation — on both the single-engine and sharded batch
//! paths.
//!
//! The work-stealing claim loop these tests stress end-to-end is the
//! same idiom `vaq-race` model-checks exhaustively on 2–3-thread
//! schedules; here it runs at full scale with real queries.

use voronoi_area_query::core::{
    AreaQueryEngine, MethodChoice, PrepareMode, QuerySpec, QueryStats, ShardedAreaQueryEngine,
};
use voronoi_area_query::geom::{Point, Rect};

/// A deterministic 12×12 jittered grid.
fn points() -> Vec<Point> {
    (0..144)
        .map(|i| {
            let x = f64::from(i % 12) / 12.0 + 0.03 + f64::from(i % 7) * 1e-3;
            let y = f64::from(i / 12) / 12.0 + 0.04 + f64::from(i % 5) * 1e-3;
            Point::new(x, y)
        })
        .collect()
}

/// A batch of overlapping windows of assorted sizes (some repeated, so
/// the cached-prepare path sees hits as well as misses).
fn areas() -> Vec<Rect> {
    let mut v: Vec<Rect> = (0..9)
        .map(|i| {
            let lo = f64::from(i) * 0.06;
            Rect::new(
                Point::new(lo, lo * 0.5),
                Point::new(lo + 0.4, lo * 0.5 + 0.35),
            )
        })
        .collect();
    v.push(v[0]);
    v.push(v[4]);
    v
}

fn specs() -> Vec<QuerySpec> {
    vec![
        QuerySpec::voronoi(),
        QuerySpec::voronoi().prepare(PrepareMode::Cached),
        QuerySpec::new().method(MethodChoice::Auto),
    ]
}

/// `(sorted indices, stats)` per area — everything a batch output
/// promises to keep independent of the thread count.
fn fingerprint(outs: &[voronoi_area_query::core::QueryOutput]) -> Vec<(Vec<u32>, QueryStats)> {
    outs.iter()
        .map(|o| {
            let r = o.result().expect("collect-shaped query");
            (r.sorted_indices(), *o.stats())
        })
        .collect()
}

#[test]
fn empty_batch_yields_no_outputs_on_any_worker_count() {
    let engine = AreaQueryEngine::build(&points());
    let none: &[Rect] = &[];
    for spec in specs() {
        for threads in [0, 1, 8] {
            assert!(engine.execute_batch(&spec, none, threads).is_empty());
        }
    }
    let sharded = ShardedAreaQueryEngine::build(&points(), 3);
    for spec in specs() {
        for threads in [0, 1, 8] {
            assert!(sharded.execute_batch(&spec, none, threads).is_empty());
        }
    }
}

#[test]
fn more_workers_than_areas_claims_each_area_exactly_once() {
    let engine = AreaQueryEngine::build(&points());
    let areas = &areas()[..3];
    for spec in specs() {
        let one = fingerprint(&engine.execute_batch(&spec, areas, 1));
        let many = fingerprint(&engine.execute_batch(&spec, areas, 16));
        assert_eq!(one.len(), 3);
        assert_eq!(one, many, "idle workers must not perturb outputs");
    }
}

#[test]
fn single_worker_batch_matches_the_inline_session() {
    let engine = AreaQueryEngine::build(&points());
    let areas = areas();
    let spec = QuerySpec::voronoi();
    let batch = fingerprint(&engine.execute_batch(&spec, &areas, 1));
    let mut session = engine.session();
    for (area, (got_indices, _)) in areas.iter().zip(&batch) {
        let inline = session.execute(&spec, area);
        let r = inline.result().expect("collect-shaped query");
        assert_eq!(&r.sorted_indices(), got_indices);
    }
}

#[test]
fn thread_count_never_changes_results_or_stats() {
    let engine = AreaQueryEngine::build(&points());
    let areas = areas();
    for spec in specs() {
        let baseline = fingerprint(&engine.execute_batch(&spec, &areas, 1));
        assert_eq!(baseline.len(), areas.len());
        for threads in [2, 3, 8] {
            let run = fingerprint(&engine.execute_batch(&spec, &areas, threads));
            assert_eq!(
                baseline, run,
                "indices and every stats counter must be bit-identical at {threads} threads"
            );
        }
        // Conservation within each output: the counters describe one
        // consistent query, however many workers raced to claim it.
        for (indices, stats) in &baseline {
            assert_eq!(stats.result_size, indices.len());
            assert!(stats.accepted <= stats.candidates);
            assert!(stats.result_size <= stats.candidates);
        }
    }
}

#[test]
fn sharded_batch_is_thread_count_invariant_and_conserves_shard_counters() {
    let areas = areas();
    for spec in specs() {
        // A fresh engine per run: the sharded planner's calibration is
        // deliberately stateful *across* batches (observations feed back
        // in area order), so thread-count invariance is a property of
        // one engine state, not of an engine mutated by earlier batches.
        let runs: Vec<Vec<(Vec<u32>, QueryStats)>> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                ShardedAreaQueryEngine::build(&points(), 4)
                    .execute_batch(&spec, &areas, threads)
                    .into_iter()
                    .map(|o| (o.indices.clone(), o.stats))
                    .collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1], "2-thread run diverged from 1-thread");
        assert_eq!(runs[0], runs[2], "8-thread run diverged from 1-thread");
        for (indices, stats) in &runs[0] {
            assert_eq!(stats.result_size, indices.len());
            // Every shard is accounted for: visited or pruned, never both
            // or neither — absorption must conserve the partition.
            assert_eq!(
                stats.shards_visited + stats.shards_pruned,
                4,
                "shard accounting must partition the 4 shards"
            );
        }
    }
}
