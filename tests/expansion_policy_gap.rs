//! A pinned counterexample to the completeness of the paper's Algorithm 1.
//!
//! DESIGN.md argues that the segment-based expansion rule
//! (`Intersects(line(p, pn), A)`) is a heuristic: a connected area can
//! reach around the *outside* of the point set's convex hull, where there
//! are no Delaunay edges to cross, so the BFS can die before reaching a
//! second pocket of internal points. This test constructs exactly that
//! configuration and shows
//!
//! * the segment policy (the paper's algorithm, verbatim) returns an
//!   incomplete result, while
//! * the cell policy returns the exact result (its completeness argument
//!   — connectivity of the cells-intersecting-A subgraph — does not care
//!   where the area wanders).
//!
//! The configuration is adversarial and outside the paper's evaluated
//! workload (star polygons centred on the data); on the paper's own
//! workload the two policies agree everywhere (see
//! `tests/consistency.rs`).

use voronoi_area_query::core::{AreaQueryEngine, ExpansionPolicy, SeedIndex};
use voronoi_area_query::geom::{Point, Polygon};

fn p(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

/// 5×5 grid over the unit square.
fn grid() -> Vec<Point> {
    let mut pts = Vec::new();
    for j in 0..5 {
        for i in 0..5 {
            pts.push(p(f64::from(i) * 0.25, f64::from(j) * 0.25));
        }
    }
    pts
}

/// A "staple" area: two thin prongs descending onto the top-left and
/// top-right grid corners, joined by a bridge that passes **above** the
/// convex hull of the points. Connected, simple — and its bridge crosses
/// no segment between any two points.
fn staple() -> Polygon {
    Polygon::new(vec![
        p(-0.02, 0.90),
        p(0.02, 0.90),
        p(0.02, 1.10),
        p(0.98, 1.10),
        p(0.98, 0.90),
        p(1.02, 0.90),
        p(1.02, 1.15),
        p(-0.02, 1.15),
    ])
    .expect("simple polygon")
}

#[test]
fn segment_policy_misses_a_pocket_cell_policy_does_not() {
    let pts = grid();
    let area = staple();
    assert!(area.is_simple());
    let engine = AreaQueryEngine::build(&pts);

    // Ground truth: exactly the two top corners lie in the staple.
    let mut want = engine.brute_force(&area);
    want.sort_unstable();
    assert_eq!(want, vec![20, 24], "the two top corners");

    let mut scratch = engine.new_scratch();
    let segment = engine.voronoi_with(
        &area,
        ExpansionPolicy::Segment,
        SeedIndex::RTree,
        &mut scratch,
    );
    let cell = engine.voronoi_with(&area, ExpansionPolicy::Cell, SeedIndex::RTree, &mut scratch);

    // The provably complete policy gets both corners.
    assert_eq!(cell.sorted_indices(), want, "cell policy must be exact");

    // The paper's policy cannot bridge the outside-the-hull corridor: no
    // segment between data points crosses the staple's bridge, so at most
    // the pocket containing the seed is found.
    assert!(
        segment.indices.len() < want.len(),
        "expected the segment policy to miss a pocket, got {:?}",
        segment.sorted_indices()
    );

    // The traditional method is unaffected (the MBR covers everything).
    assert_eq!(engine.traditional(&area).sorted_indices(), want);
}

#[test]
fn the_gap_needs_the_outside_corridor() {
    // Control experiment: route the same bridge *through* the point set
    // (between the y = 0.75 and y = 1.0 grid rows) instead of outside the
    // hull — now the bridge crosses grid edges, the BFS can follow it,
    // and both policies are exact. This isolates the outside-the-hull
    // corridor as the culprit. The shape is an upward-opening "U": two
    // prongs covering the top corners, joined at y ∈ [0.90, 0.93].
    let pts = grid();
    let area = Polygon::new(vec![
        p(-0.02, 0.90),
        p(1.02, 0.90),
        p(1.02, 1.15),
        p(0.98, 1.15),
        p(0.98, 0.93),
        p(0.02, 0.93),
        p(0.02, 1.15),
        p(-0.02, 1.15),
    ])
    .expect("simple polygon");
    let engine = AreaQueryEngine::build(&pts);
    let mut want = engine.brute_force(&area);
    want.sort_unstable();
    assert_eq!(want, vec![20, 24], "still exactly the two top corners");
    let mut scratch = engine.new_scratch();
    for policy in [ExpansionPolicy::Segment, ExpansionPolicy::Cell] {
        let r = engine.voronoi_with(&area, policy, SeedIndex::RTree, &mut scratch);
        assert_eq!(r.sorted_indices(), want, "{policy:?} on the in-hull bridge");
    }
}
