//! Differential suite: the sharded engine must return **bit-identical
//! result sets** (sorted global input indices, and counts) to the
//! unsharded engine for every `QuerySpec`, every area shape (star
//! polygons, regions with holes, rectangle windows, areas straddling
//! shard boundaries) and every shard count — including the `S = 1` and
//! `S > point count` edges. Plus the dynamic-overlay oracle under
//! interleaved insert / remove / compact on the sharded path.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use voronoi_area_query::core::{
    AreaQueryEngine, DynamicAreaQueryEngine, ExpansionPolicy, FilterIndex, OutputMode, PrepareMode,
    QueryArea, QueryMethod, QuerySpec, SeedIndex, ShardedAreaQueryEngine,
    ShardedDynamicAreaQueryEngine,
};
use voronoi_area_query::geom::{Point, Polygon, Rect, Region};
use voronoi_area_query::workload::{
    generate, random_query_polygon, unit_space, Distribution, PolygonSpec,
};

fn p(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

fn oracle_sorted(single: &AreaQueryEngine, area: &dyn QueryArea) -> Vec<u32> {
    let mut v = single.brute_force(area);
    v.sort_unstable();
    v
}

/// Sweeps the sharded engine through the `QuerySpec` grid (methods ×
/// seeds × policies × prepare modes × collect/count) against the
/// unsharded brute-force oracle. Filter stays `RTree` and the kd-tree
/// seed is skipped: shard engines are built with default indexes.
fn assert_sharded_grid_agrees(
    single: &AreaQueryEngine,
    sharded: &ShardedAreaQueryEngine,
    area: &dyn QueryArea,
    context: &str,
) {
    let want = oracle_sorted(single, area);
    for method in [
        QueryMethod::Voronoi,
        QueryMethod::Traditional,
        QueryMethod::BruteForce,
    ] {
        for seed in [SeedIndex::RTree, SeedIndex::DelaunayWalk] {
            for policy in [ExpansionPolicy::Segment, ExpansionPolicy::Cell] {
                for prepare in [
                    PrepareMode::Raw,
                    PrepareMode::PrepareOnce,
                    PrepareMode::Cached,
                ] {
                    let spec = QuerySpec::new()
                        .method(method)
                        .filter(FilterIndex::RTree)
                        .seed(seed)
                        .policy(policy)
                        .prepare(prepare)
                        .output(OutputMode::Collect);
                    let ctx = format!("{context}: {spec:?}");
                    let got = sharded.execute(&spec, area);
                    assert_eq!(got.indices, want, "{ctx}");
                    assert_eq!(got.count, want.len(), "{ctx} (count field)");
                    assert_eq!(got.stats.result_size, want.len(), "{ctx} (result_size)");
                    assert_eq!(
                        got.stats.shards_visited + got.stats.shards_pruned,
                        sharded.shard_count(),
                        "{ctx} (shard accounting)"
                    );
                    let counted = sharded.execute(&spec.output(OutputMode::Count), area);
                    assert_eq!(counted.count, want.len(), "{ctx} (count mode)");
                    assert!(counted.indices.is_empty(), "{ctx} (count materialises)");
                }
            }
        }
    }
}

#[test]
fn grid_agrees_on_star_polygons_across_shard_counts() {
    let pts = generate(500, Distribution::Uniform, 0x5AAD);
    let single = AreaQueryEngine::build(&pts);
    let space = unit_space();
    // S = 1 (degenerate single shard), small, medium, and S > n.
    for shards in [1usize, 3, 8, 4096] {
        let sharded = ShardedAreaQueryEngine::build(&pts, shards);
        assert_eq!(sharded.shard_count(), shards.min(pts.len()));
        for seed in 0..2u64 {
            let area =
                random_query_polygon(&space, &PolygonSpec::with_query_size(0.06), 7000 + seed);
            assert_sharded_grid_agrees(
                &single,
                &sharded,
                &area,
                &format!("star {seed}, S={shards}"),
            );
        }
    }
}

#[test]
fn grid_agrees_on_rect_windows_and_regions_with_holes() {
    let pts = generate(450, Distribution::Uniform, 0xB00B5);
    let single = AreaQueryEngine::build(&pts);
    let sharded = ShardedAreaQueryEngine::build(&pts, 5);
    for (i, rect) in [
        Rect::new(p(0.2, 0.2), p(0.6, 0.7)),
        Rect::new(p(0.0, 0.0), p(1.0, 1.0)),
        Rect::new(p(0.48, 0.05), p(0.52, 0.95)), // thin, crosses x splits
    ]
    .iter()
    .enumerate()
    {
        assert_sharded_grid_agrees(&single, &sharded, rect, &format!("window {i}"));
    }
    let outer = Polygon::new(vec![p(0.1, 0.1), p(0.9, 0.15), p(0.85, 0.9), p(0.12, 0.8)]).unwrap();
    let hole = Polygon::new(vec![p(0.4, 0.4), p(0.6, 0.42), p(0.58, 0.6), p(0.42, 0.58)]).unwrap();
    let region = Region::new(outer, vec![hole]);
    region.validate_nesting().unwrap();
    assert_sharded_grid_agrees(&single, &sharded, &region, "region with hole");
}

/// Areas deliberately straddling shard boundaries: squares centred on
/// every shard-MBR corner, plus a full-height band through the median
/// split — the worst case for the prune and the classic off-by-one spot
/// for the merge.
#[test]
fn grid_agrees_on_shard_boundary_straddling_areas() {
    let pts = generate(600, Distribution::Uniform, 0x57AD);
    let single = AreaQueryEngine::build(&pts);
    let sharded = ShardedAreaQueryEngine::build(&pts, 4);
    let mut straddlers: Vec<Rect> = Vec::new();
    for mbr in sharded.shard_mbrs() {
        // Corner- and edge-centred squares (those on the domain boundary
        // may legitimately hit a single shard; the differential equality
        // is the point).
        straddlers.push(Rect::from_center(p(mbr.max.x, mbr.max.y), 0.2, 0.2));
        straddlers.push(Rect::from_center(p(mbr.min.x, mbr.center().y), 0.15, 0.3));
    }
    // A full-width band through the median: guaranteed multi-shard.
    let band = Rect::new(p(0.0, 0.45), p(1.0, 0.55));
    straddlers.push(band);
    for (i, rect) in straddlers.iter().enumerate() {
        let want = oracle_sorted(&single, rect);
        let got = sharded.execute(&QuerySpec::new(), rect);
        assert_eq!(got.indices, want, "straddler {i}");
    }
    let band_out = sharded.execute(&QuerySpec::new(), &band);
    assert!(
        band_out.stats.shards_visited >= 2,
        "the median band must straddle shards, visited {}",
        band_out.stats.shards_visited
    );
}

#[test]
fn batch_path_agrees_with_single_path_and_unsharded() {
    let pts = generate(900, Distribution::Uniform, 0xBA7C);
    let single = AreaQueryEngine::build(&pts);
    let sharded = ShardedAreaQueryEngine::build(&pts, 6);
    let space = unit_space();
    // Skewed batch with repeats (exercises the shared preparation).
    let mut areas: Vec<Polygon> = (0..10)
        .map(|i| {
            let qs = if i % 3 == 0 { 0.2 } else { 0.01 };
            random_query_polygon(&space, &PolygonSpec::with_query_size(qs), 880 + i)
        })
        .collect();
    areas.push(areas[0].clone());
    areas.push(areas[1].clone());
    for spec in [
        QuerySpec::new(),
        QuerySpec::traditional(),
        QuerySpec::new().prepare(PrepareMode::Cached),
        QuerySpec::new().output(OutputMode::Count),
    ] {
        let unsharded = single.execute_batch(&spec, &areas, 2);
        for threads in [1usize, 2, 5, 32] {
            let outs = sharded.execute_batch(&spec, &areas, threads);
            assert_eq!(outs.len(), areas.len());
            for (i, (got, want)) in outs.iter().zip(&unsharded).enumerate() {
                assert_eq!(got.count, want.count(), "area {i}, threads={threads}");
                if let Some(r) = want.result() {
                    assert_eq!(
                        got.indices,
                        r.sorted_indices(),
                        "area {i}, threads={threads}"
                    );
                }
                // The per-area single path agrees with the batch path,
                // stats included — except the two how-was-it-computed
                // fields: a lone execute() has no batch context, so a
                // repeated area is a fresh miss there but a hit within
                // the batch, and a batch-shared prepared area computes
                // its lazily-cached interior point once for the whole
                // batch (fewer predicate evaluations on reuse).
                let one = sharded.execute(&spec, &areas[i]);
                assert_eq!(one.indices, got.indices, "area {i}, threads={threads}");
                let mut sa = one.stats;
                let mut sb = got.stats;
                sa.prepared_cache = Default::default();
                sb.prepared_cache = Default::default();
                sa.predicates = sb.predicates;
                assert_eq!(sa, sb, "area {i}, threads={threads}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random point sets, shard counts and query areas: the sharded
    /// engine's sorted global indices and counts match brute force and
    /// the unsharded funnel.
    #[test]
    fn random_shardings_agree(
        seed in 0u64..100_000,
        n in 30usize..260,
        shards in 1usize..14,
        qs_mil in 5u32..250,
    ) {
        let pts = generate(n, Distribution::Uniform, seed);
        let single = AreaQueryEngine::build(&pts);
        let sharded = ShardedAreaQueryEngine::build(&pts, shards);
        let area = random_query_polygon(
            &unit_space(),
            &PolygonSpec::with_query_size(f64::from(qs_mil) / 1000.0),
            seed ^ 0x0A5E,
        );
        let want = oracle_sorted(&single, &area);
        let got = sharded.execute(&QuerySpec::new(), &area);
        prop_assert_eq!(&got.indices, &want);
        prop_assert_eq!(got.count, want.len());
        let counted = sharded.execute(&QuerySpec::new().output(OutputMode::Count), &area);
        prop_assert_eq!(counted.count, want.len());
        // Cell policy + prepared, one more cell of the grid per case.
        let alt = QuerySpec::new()
            .policy(ExpansionPolicy::Cell)
            .prepare(PrepareMode::Cached);
        prop_assert_eq!(&sharded.execute(&alt, &area).indices, &want);
    }

    /// The dynamic sharded overlay equals a by-hand oracle under random
    /// interleavings of insert / remove / query / compaction.
    #[test]
    fn dynamic_sharded_matches_oracle_under_interleaving(
        seed in 0u64..100_000,
        n in 0usize..160,
        shards in 1usize..7,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let initial = generate(n, Distribution::Uniform, seed ^ 0xD15C);
        let mut eng = ShardedDynamicAreaQueryEngine::new(&initial, shards);
        let mut flat = DynamicAreaQueryEngine::new(&initial);
        let mut live: Vec<(u64, Point)> = initial
            .iter()
            .enumerate()
            .map(|(i, &q)| (i as u64, q))
            .collect();
        for step in 0..60 {
            match rng.gen_range(0..10) {
                0..=3 => {
                    // Inserts may fall outside the unit square (and thus
                    // outside every shard MBR).
                    let q = p(rng.gen::<f64>() * 1.3 - 0.15, rng.gen::<f64>() * 1.3 - 0.15);
                    let id = eng.insert(q);
                    let flat_id = flat.insert(q);
                    prop_assert_eq!(id, flat_id, "id allocation stays in lockstep");
                    live.push((id, q));
                }
                4..=6 => {
                    if !live.is_empty() {
                        let (id, _) = live[rng.gen_range(0..live.len())];
                        prop_assert!(eng.remove(id), "live id removes");
                        prop_assert!(flat.remove(id));
                        live.retain(|&(i, _)| i != id);
                        prop_assert!(!eng.remove(id), "double remove refused");
                    }
                }
                7 => {
                    eng.maybe_compact();
                }
                _ => {
                    let half = 0.05 + rng.gen::<f64>() * 0.3;
                    let c = p(rng.gen(), rng.gen());
                    let area = Polygon::new(vec![
                        p(c.x - half, c.y - half),
                        p(c.x + half, c.y - half),
                        p(c.x + half, c.y + half),
                        p(c.x - half, c.y + half),
                    ])
                    .unwrap();
                    let mut want: Vec<u64> = live
                        .iter()
                        .filter(|(_, q)| QueryArea::contains(&area, *q))
                        .map(|&(id, _)| id)
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(eng.query(&area), want.clone(), "step {}", step);
                    prop_assert_eq!(flat.query(&area), want, "flat step {}", step);
                }
            }
        }
        eng.compact();
        let area = Polygon::new(vec![p(0.1, 0.1), p(0.9, 0.1), p(0.9, 0.9), p(0.1, 0.9)]).unwrap();
        let mut want: Vec<u64> = live
            .iter()
            .filter(|(_, q)| QueryArea::contains(&area, *q))
            .map(|&(id, _)| id)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(eng.query(&area), want);
        prop_assert_eq!(eng.delta_len(), 0);
        prop_assert_eq!(eng.len(), live.len());
    }
}
