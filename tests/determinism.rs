//! Determinism: identical seeds must give identical datasets, polygons,
//! engines, query results and statistics — the property the experiment
//! harness' repeatability rests on.

use voronoi_area_query::core::{AreaQueryEngine, ExpansionPolicy, SeedIndex};
use voronoi_area_query::workload::{
    build_engine, generate, random_query_polygon, run_config, unit_space, Distribution,
    PolygonSpec, SweepConfig,
};

#[test]
fn datasets_and_polygons_are_seed_deterministic() {
    for dist in [
        Distribution::Uniform,
        Distribution::Clustered {
            clusters: 5,
            sigma: 0.05,
        },
        Distribution::Grid { jitter: 0.3 },
    ] {
        let a = generate(1_000, dist, 77);
        let b = generate(1_000, dist, 77);
        assert_eq!(a, b, "{dist:?}");
    }
    let space = unit_space();
    let spec = PolygonSpec::with_query_size(0.02);
    assert_eq!(
        random_query_polygon(&space, &spec, 5).vertices(),
        random_query_polygon(&space, &spec, 5).vertices()
    );
}

#[test]
fn rebuilt_engines_answer_identically() {
    let points = generate(4_000, Distribution::Uniform, 21);
    let e1 = AreaQueryEngine::build(&points);
    let e2 = AreaQueryEngine::build(&points);
    let space = unit_space();
    let mut s1 = e1.new_scratch();
    let mut s2 = e2.new_scratch();
    for seed in 0..6u64 {
        let area = random_query_polygon(&space, &PolygonSpec::with_query_size(0.03), seed);
        let t1 = e1.traditional(&area);
        let t2 = e2.traditional(&area);
        // Not just the same set: the same traversal order and stats.
        assert_eq!(t1.indices, t2.indices);
        assert_eq!(t1.stats, t2.stats);
        let v1 = e1.voronoi_with(&area, ExpansionPolicy::Segment, SeedIndex::RTree, &mut s1);
        let v2 = e2.voronoi_with(&area, ExpansionPolicy::Segment, SeedIndex::RTree, &mut s2);
        assert_eq!(v1.indices, v2.indices, "BFS discovery order is stable");
        assert_eq!(v1.stats, v2.stats);
    }
}

#[test]
fn repeated_queries_on_one_engine_are_stable() {
    // Scratch reuse must not leak state between queries.
    let points = generate(3_000, Distribution::Uniform, 22);
    let engine = AreaQueryEngine::build(&points);
    let mut scratch = engine.new_scratch();
    let space = unit_space();
    let areas: Vec<_> = (0..5u64)
        .map(|s| random_query_polygon(&space, &PolygonSpec::with_query_size(0.05), s))
        .collect();
    let first: Vec<_> = areas
        .iter()
        .map(|a| {
            engine
                .voronoi_with(a, ExpansionPolicy::Segment, SeedIndex::RTree, &mut scratch)
                .indices
        })
        .collect();
    // Run the same queries again, interleaved in reverse order.
    for (area, want) in areas.iter().zip(&first).rev() {
        let got = engine
            .voronoi_with(
                area,
                ExpansionPolicy::Segment,
                SeedIndex::RTree,
                &mut scratch,
            )
            .indices;
        assert_eq!(&got, want);
    }
}

#[test]
fn experiment_statistics_are_reproducible() {
    let cfg = SweepConfig {
        reps: 10,
        ..SweepConfig::default()
    };
    let engine = build_engine(2_000, &cfg);
    let a = run_config(&engine, 0.02, &cfg);
    let b = run_config(&engine, 0.02, &cfg);
    // All counted statistics are bit-identical; only times may differ.
    assert_eq!(a.result_size, b.result_size);
    assert_eq!(a.traditional.candidates, b.traditional.candidates);
    assert_eq!(a.traditional.redundant, b.traditional.redundant);
    assert_eq!(a.voronoi.candidates, b.voronoi.candidates);
    assert_eq!(a.voronoi.redundant, b.voronoi.redundant);
}
