//! End-to-end consistency: every method configuration must return exactly
//! the set a brute-force scan returns, across distributions, polygon
//! shapes and engine configurations.

use voronoi_area_query::core::{AreaQueryEngine, ExpansionPolicy, FilterIndex, SeedIndex};
use voronoi_area_query::geom::{Point, Polygon};
use voronoi_area_query::workload::{
    generate, random_query_polygon, unit_space, Distribution, PolygonSpec,
};

fn full_engine(points: &[Point]) -> AreaQueryEngine {
    AreaQueryEngine::builder(points)
        .with_kdtree()
        .with_quadtree()
        .build()
}

fn assert_all_configs_agree(engine: &AreaQueryEngine, area: &Polygon, context: &str) {
    let mut want = engine.brute_force(area);
    want.sort_unstable();
    let mut scratch = engine.new_scratch();
    for filter in [
        FilterIndex::RTree,
        FilterIndex::KdTree,
        FilterIndex::Quadtree,
    ] {
        assert_eq!(
            engine.traditional_with(area, filter).sorted_indices(),
            want,
            "{context}: traditional {filter:?}"
        );
    }
    for policy in [ExpansionPolicy::Segment, ExpansionPolicy::Cell] {
        for seed in [SeedIndex::RTree, SeedIndex::KdTree, SeedIndex::DelaunayWalk] {
            assert_eq!(
                engine
                    .voronoi_with(area, policy, seed, &mut scratch)
                    .sorted_indices(),
                want,
                "{context}: voronoi {policy:?} {seed:?}"
            );
        }
    }
}

#[test]
fn all_configurations_agree_on_uniform_data() {
    let points = generate(5_000, Distribution::Uniform, 11);
    let engine = full_engine(&points);
    let space = unit_space();
    for qs in [0.01, 0.05, 0.2] {
        for seed in 0..5u64 {
            let area = random_query_polygon(&space, &PolygonSpec::with_query_size(qs), 100 + seed);
            assert_all_configs_agree(&engine, &area, &format!("uniform qs={qs} seed={seed}"));
        }
    }
}

#[test]
fn all_configurations_agree_on_clustered_data() {
    let points = generate(
        5_000,
        Distribution::Clustered {
            clusters: 8,
            sigma: 0.02,
        },
        12,
    );
    let engine = full_engine(&points);
    let space = unit_space();
    for seed in 0..8u64 {
        let area = random_query_polygon(&space, &PolygonSpec::with_query_size(0.03), 200 + seed);
        assert_all_configs_agree(&engine, &area, &format!("clustered seed={seed}"));
    }
}

#[test]
fn all_configurations_agree_on_degenerate_grid_data() {
    // Exact grid: maximal cocircularity in the triangulation, points
    // exactly on polygon edges are possible.
    let points = generate(2_500, Distribution::Grid { jitter: 0.0 }, 13);
    let engine = full_engine(&points);
    let space = unit_space();
    for seed in 0..8u64 {
        let area = random_query_polygon(&space, &PolygonSpec::with_query_size(0.05), 300 + seed);
        assert_all_configs_agree(&engine, &area, &format!("grid seed={seed}"));
    }
}

#[test]
fn axis_aligned_rectangle_queries_have_zero_waste() {
    // When the query area IS its MBR, the traditional method's candidate
    // set equals the result set — the case the paper concedes to it.
    let points = generate(10_000, Distribution::Uniform, 14);
    let engine = AreaQueryEngine::build(&points);
    let area = Polygon::new(vec![
        Point::new(0.3, 0.3),
        Point::new(0.7, 0.3),
        Point::new(0.7, 0.6),
        Point::new(0.3, 0.6),
    ])
    .unwrap();
    let r = engine.traditional(&area);
    assert_eq!(r.stats.redundant_validations(), 0);
    assert_eq!(r.sorted_indices(), engine.voronoi(&area).sorted_indices());
}

#[test]
fn spiky_concave_polygons_agree() {
    // Very spiky stars (min radius 5% of max) maximise MBR waste.
    let points = generate(4_000, Distribution::Uniform, 15);
    let engine = full_engine(&points);
    let space = unit_space();
    for seed in 0..6u64 {
        let spec = PolygonSpec {
            vertices: 10,
            query_size: 0.05,
            min_radius_ratio: 0.05,
        };
        let area = random_query_polygon(&space, &spec, 400 + seed);
        assert_all_configs_agree(&engine, &area, &format!("spiky seed={seed}"));
    }
}

#[test]
fn many_vertex_polygons_agree() {
    // 40-gon query areas (the paper fixes 10; the library must not).
    let points = generate(3_000, Distribution::Uniform, 16);
    let engine = full_engine(&points);
    let space = unit_space();
    for seed in 0..4u64 {
        let spec = PolygonSpec {
            vertices: 40,
            query_size: 0.08,
            min_radius_ratio: 0.4,
        };
        let area = random_query_polygon(&space, &spec, 500 + seed);
        assert_all_configs_agree(&engine, &area, &format!("40-gon seed={seed}"));
    }
}

#[test]
fn payload_engine_returns_identical_results() {
    let points = generate(3_000, Distribution::Uniform, 17);
    let plain = AreaQueryEngine::build(&points);
    let heavy = AreaQueryEngine::builder(&points).payload_bytes(256).build();
    let space = unit_space();
    for seed in 0..4u64 {
        let area = random_query_polygon(&space, &PolygonSpec::with_query_size(0.04), 600 + seed);
        let a = plain.voronoi(&area);
        let b = heavy.voronoi(&area);
        assert_eq!(a.sorted_indices(), b.sorted_indices());
        assert_eq!(a.stats.candidates, b.stats.candidates);
        assert_eq!(a.stats.payload_checksum, 0, "no records configured");
        assert_ne!(b.stats.payload_checksum, 0, "records were materialised");
        let t = heavy.traditional(&area);
        assert_ne!(t.stats.payload_checksum, 0);
    }
}
