//! Every legacy engine entrypoint is a thin wrapper over the unified
//! `execute` funnel. This suite pins that contract: each named method must
//! return **bit-identical indices and stats** to the equivalent
//! `QuerySpec` executed through a session, across the full configuration
//! grid.

use voronoi_area_query::core::{
    AreaQueryEngine, ExpansionPolicy, FilterIndex, OutputMode, PrepareMode, QueryMethod, QuerySpec,
    SeedIndex,
};
use voronoi_area_query::geom::Polygon;
use voronoi_area_query::workload::{
    generate, random_query_polygon, unit_space, Distribution, PolygonSpec,
};

fn engine_and_areas(n: usize, payload: usize) -> (AreaQueryEngine, Vec<Polygon>) {
    let pts = generate(n, Distribution::Uniform, 0x1E6A);
    let engine = AreaQueryEngine::builder(&pts)
        .with_kdtree()
        .with_quadtree()
        .payload_bytes(payload)
        .build();
    let space = unit_space();
    let areas = (0..5)
        .map(|i| random_query_polygon(&space, &PolygonSpec::with_query_size(0.04), 50 + i))
        .collect();
    (engine, areas)
}

#[test]
fn traditional_wrappers_match_specs() {
    let (engine, areas) = engine_and_areas(1200, 0);
    for area in &areas {
        for filter in [
            FilterIndex::RTree,
            FilterIndex::KdTree,
            FilterIndex::Quadtree,
        ] {
            let legacy = engine.traditional_with(area, filter);
            let new = engine
                .execute(&QuerySpec::traditional().filter(filter), area)
                .into_result()
                .unwrap();
            assert_eq!(legacy.indices, new.indices, "{filter:?}");
            assert_eq!(legacy.stats, new.stats, "{filter:?}");
        }
        let legacy = engine.traditional(area);
        let new = engine
            .execute(&QuerySpec::traditional(), area)
            .into_result()
            .unwrap();
        assert_eq!(legacy.indices, new.indices);
        assert_eq!(legacy.stats, new.stats);
    }
}

#[test]
fn voronoi_wrappers_match_specs() {
    let (engine, areas) = engine_and_areas(1500, 0);
    let mut scratch = engine.new_scratch();
    for area in &areas {
        for policy in [ExpansionPolicy::Segment, ExpansionPolicy::Cell] {
            for seed in [SeedIndex::RTree, SeedIndex::KdTree, SeedIndex::DelaunayWalk] {
                let legacy = engine.voronoi_with(area, policy, seed, &mut scratch);
                let spec = QuerySpec::voronoi().policy(policy).seed(seed);
                let new = engine.execute(&spec, area).into_result().unwrap();
                assert_eq!(legacy.indices, new.indices, "{policy:?} {seed:?}");
                assert_eq!(legacy.stats, new.stats, "{policy:?} {seed:?}");
            }
        }
        let legacy = engine.voronoi(area);
        let new = engine
            .execute(&QuerySpec::voronoi(), area)
            .into_result()
            .unwrap();
        assert_eq!(legacy.indices, new.indices);
        assert_eq!(legacy.stats, new.stats);
    }
}

#[test]
fn prepared_wrappers_match_prepare_once_specs() {
    let (engine, areas) = engine_and_areas(1500, 0);
    for area in &areas {
        let legacy = engine.voronoi_prepared(area);
        let spec = QuerySpec::voronoi().prepare(PrepareMode::PrepareOnce);
        let new = engine.execute(&spec, area).into_result().unwrap();
        assert_eq!(legacy.indices, new.indices);
        assert_eq!(legacy.stats, new.stats);
        // And the prepared path is exact: identical to raw.
        assert_eq!(legacy.indices, engine.voronoi(area).indices);

        let legacy = engine.traditional_prepared(area);
        let spec = QuerySpec::traditional().prepare(PrepareMode::PrepareOnce);
        let new = engine.execute(&spec, area).into_result().unwrap();
        assert_eq!(legacy.indices, new.indices);
        assert_eq!(legacy.stats, new.stats);
    }
}

#[test]
fn count_wrappers_match_count_specs_and_track_stats() {
    let (engine, areas) = engine_and_areas(1500, 0);
    let mut scratch = engine.new_scratch();
    for area in &areas {
        let want = engine.brute_force(area).len();
        assert_eq!(engine.voronoi_count(area, &mut scratch), want);
        assert_eq!(engine.traditional_count(area), want);

        // Counts flow through the same seeded, stats-tracked path as
        // collection — the historical `voronoi_count` dropped seeding and
        // stats entirely.
        let voro = engine.execute(&QuerySpec::voronoi().output(OutputMode::Count), area);
        let coll = engine.execute(&QuerySpec::voronoi(), area);
        assert_eq!(voro.count(), want);
        assert_eq!(voro.stats(), coll.stats());
        assert!(voro.stats().seed.is_some(), "count queries are seeded");
        assert_eq!(voro.stats().result_size, want);

        let trad = engine.execute(&QuerySpec::traditional().output(OutputMode::Count), area);
        assert_eq!(trad.count(), want);
        assert_eq!(trad.stats(), &engine.traditional(area).stats);
    }
}

/// Counting respects the seed index — the historical `voronoi_count`
/// ignored `SeedIndex` and hard-coded the segment policy.
#[test]
fn count_respects_seed_and_policy() {
    let (engine, areas) = engine_and_areas(1200, 0);
    for area in &areas {
        let want = engine.brute_force(area).len();
        for seed in [SeedIndex::RTree, SeedIndex::KdTree, SeedIndex::DelaunayWalk] {
            for policy in [ExpansionPolicy::Segment, ExpansionPolicy::Cell] {
                let spec = QuerySpec::voronoi()
                    .seed(seed)
                    .policy(policy)
                    .output(OutputMode::Count);
                let out = engine.execute(&spec, area);
                assert_eq!(out.count(), want, "{seed:?} {policy:?}");
                match policy {
                    ExpansionPolicy::Segment => assert_eq!(out.stats().cell_tests, 0),
                    ExpansionPolicy::Cell => assert_eq!(out.stats().segment_tests, 0),
                }
            }
        }
    }
}

#[test]
fn brute_force_and_classify_match_specs() {
    let (engine, areas) = engine_and_areas(800, 0);
    for area in &areas {
        let legacy = engine.brute_force(area);
        let new = engine
            .execute(&QuerySpec::new().method(QueryMethod::BruteForce), area)
            .into_result()
            .unwrap();
        assert_eq!(legacy, new.indices);
        assert_eq!(new.stats.candidates, engine.len());

        let legacy = engine.classify(area).unwrap();
        let out = engine.execute(&QuerySpec::new().output(OutputMode::Classify), area);
        assert_eq!(legacy, out.classes().unwrap());
    }
}

/// The payload-simulation path (record materialisation during validation)
/// flows through the funnel identically.
#[test]
fn payload_stats_survive_the_funnel() {
    let (engine, areas) = engine_and_areas(1000, 256);
    for area in &areas {
        let legacy = engine.traditional(area);
        let new = engine
            .execute(&QuerySpec::traditional(), area)
            .into_result()
            .unwrap();
        assert_ne!(legacy.stats.payload_checksum, 0);
        assert_eq!(legacy.stats, new.stats);
        let legacy = engine.voronoi(area);
        let new = engine
            .execute(&QuerySpec::voronoi(), area)
            .into_result()
            .unwrap();
        assert_ne!(legacy.stats.payload_checksum, 0);
        assert_eq!(legacy.stats, new.stats);
    }
}
