//! Differential suite for the result-sink layer: **every sink × every
//! execution path** against a brute-force oracle.
//!
//! Paths: plain session, work-stealing batch, dynamic (under interleaved
//! insert / remove / compact), sharded `S ∈ {1, 3, 8}` (single and batch),
//! and sharded dynamic. Sinks: collect, count, kNN-within-area (including
//! `k = 0`, `k ≥ matches`, and exact tie-distance cases) and payload
//! materialisation (per-shard record stores split from one logical store,
//! checksums bit-identical to the unsharded engine). Plus the
//! stats-conservation audit: per-shard counters sum to the merged
//! counters, and the one-shot prepared-cache traffic is reported once,
//! not once per shard.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use voronoi_area_query::core::{
    AreaQueryEngine, DynamicAreaQueryEngine, OutputMode, PrepareMode, QueryArea, QueryMethod,
    QuerySpec, ShardedAreaQueryEngine, ShardedDynamicAreaQueryEngine,
};
use voronoi_area_query::geom::{Point, Polygon, Rect};
use voronoi_area_query::workload::{
    generate, random_query_polygon, unit_space, Distribution, PolygonSpec,
};

fn p(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

const PAYLOAD: usize = 256;

fn dist_sq(origin: Point, q: Point) -> f64 {
    let dx = q.x - origin.x;
    let dy = q.y - origin.y;
    dx * dx + dy * dy
}

/// kNN oracle over an arbitrary live set: ascending `(dist_sq, id)`,
/// first `k`.
fn knn_oracle<I: Copy + Ord>(
    live: &[(I, Point)],
    area: &dyn QueryArea,
    origin: Point,
    k: usize,
) -> Vec<(I, f64)> {
    let mut matches: Vec<(I, f64)> = live
        .iter()
        .filter(|(_, q)| area.contains(*q))
        .map(|&(id, q)| (id, dist_sq(origin, q)))
        .collect();
    matches.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    matches.truncate(k);
    matches
}

fn sorted_matches(live: &[(u32, Point)], area: &dyn QueryArea) -> Vec<u32> {
    let mut v: Vec<u32> = live
        .iter()
        .filter(|(_, q)| area.contains(*q))
        .map(|&(id, _)| id)
        .collect();
    v.sort_unstable();
    v
}

fn indexed(points: &[Point]) -> Vec<(u32, Point)> {
    points
        .iter()
        .enumerate()
        .map(|(i, &q)| (i as u32, q))
        .collect()
}

fn test_areas() -> Vec<Box<dyn QueryArea + Sync>> {
    let space = unit_space();
    let mut areas: Vec<Box<dyn QueryArea + Sync>> = Vec::new();
    for seed in 0..3u64 {
        areas.push(Box::new(random_query_polygon(
            &space,
            &PolygonSpec::with_query_size(0.04 + 0.05 * seed as f64),
            9100 + seed,
        )));
    }
    areas.push(Box::new(Rect::new(p(0.2, 0.25), p(0.65, 0.6))));
    areas.push(Box::new(Rect::new(p(2.0, 2.0), p(3.0, 3.0)))); // empty answer
    areas
}

/// Every sink on the plain session path agrees with the oracle, for
/// every method, including k-edge cases and the materialisation
/// checksum identity (collect checksum + per-result record reads).
#[test]
fn plain_sinks_agree_with_oracle() {
    let pts = generate(700, Distribution::Uniform, 0x51CC);
    let engine = AreaQueryEngine::builder(&pts)
        .payload_bytes(PAYLOAD)
        .build();
    let store = engine.record_store().expect("payload attached");
    let live = indexed(&pts);
    let origin = p(0.45, 0.55);
    for (ai, area) in test_areas().iter().enumerate() {
        let area: &dyn QueryArea = area.as_ref();
        let want = sorted_matches(&live, area);
        for method in [
            QueryMethod::Voronoi,
            QueryMethod::Traditional,
            QueryMethod::BruteForce,
        ] {
            let base = QuerySpec::new().method(method);
            let collected = engine.execute(&base, area);
            assert_eq!(
                collected.result().unwrap().sorted_indices(),
                want,
                "area {ai} {method:?} collect"
            );
            let counted = engine.execute(&base.output(OutputMode::Count), area);
            assert_eq!(counted.count(), want.len(), "area {ai} {method:?} count");

            for k in [0usize, 1, 5, want.len(), want.len() + 7] {
                let spec = base.output(OutputMode::TopKNearest { k, origin });
                let out = engine.execute(&spec, area);
                let got: Vec<(u32, f64)> = out
                    .neighbors()
                    .unwrap()
                    .iter()
                    .map(|n| (n.id, n.dist_sq))
                    .collect();
                assert_eq!(
                    got,
                    knn_oracle(&live, area, origin, k),
                    "area {ai} {method:?} knn k={k}"
                );
                assert_eq!(out.stats().result_size, got.len());
            }

            let materialized = engine.execute(&base.output(OutputMode::Materialize), area);
            let r = materialized.result().unwrap();
            assert_eq!(r.sorted_indices(), want, "area {ai} {method:?} materialize");
            let extra: u64 = r
                .indices
                .iter()
                .fold(0u64, |acc, &i| acc.wrapping_add(store.read(i)));
            assert_eq!(
                r.stats.payload_checksum,
                collected.stats().payload_checksum.wrapping_add(extra),
                "area {ai} {method:?}: materialisation reads exactly the accepted records"
            );
        }
    }
}

/// The work-stealing batch matches the per-query path for the new sinks,
/// for every thread count.
#[test]
fn batch_sinks_match_single_queries() {
    let pts = generate(900, Distribution::Uniform, 0xBA7C5);
    let engine = AreaQueryEngine::builder(&pts)
        .payload_bytes(PAYLOAD)
        .build();
    let space = unit_space();
    let areas: Vec<Polygon> = (0..8)
        .map(|i| {
            let qs = if i % 3 == 0 { 0.15 } else { 0.02 };
            random_query_polygon(&space, &PolygonSpec::with_query_size(qs), 7200 + i)
        })
        .collect();
    let origin = p(0.5, 0.5);
    for spec in [
        QuerySpec::new().output(OutputMode::TopKNearest { k: 4, origin }),
        QuerySpec::new().output(OutputMode::Materialize),
        QuerySpec::traditional().output(OutputMode::TopKNearest { k: 9, origin }),
        QuerySpec::new()
            .prepare(PrepareMode::Cached)
            .output(OutputMode::Materialize),
    ] {
        let single: Vec<_> = areas.iter().map(|a| engine.execute(&spec, a)).collect();
        for threads in [1usize, 2, 7] {
            let batch = engine.execute_batch(&spec, &areas, threads);
            assert_eq!(batch.len(), single.len());
            for (i, (got, want)) in batch.iter().zip(&single).enumerate() {
                assert_eq!(got.count(), want.count(), "query {i}, threads={threads}");
                match (got.neighbors(), want.neighbors()) {
                    (Some(a), Some(b)) => assert_eq!(a, b, "query {i}, threads={threads}"),
                    (None, None) => {
                        let (ra, rb) = (got.result().unwrap(), want.result().unwrap());
                        assert_eq!(ra.indices, rb.indices, "query {i}, threads={threads}");
                        assert_eq!(
                            ra.stats.payload_checksum, rb.stats.payload_checksum,
                            "query {i}, threads={threads}"
                        );
                    }
                    _ => panic!("output shapes diverged on query {i}"),
                }
            }
        }
    }
}

/// Every sink on the sharded engine (single and batch path, S ∈ {1,3,8})
/// is bit-identical to the unsharded engine — including the payload
/// checksums, which flow through per-shard record stores split from one
/// logical store.
#[test]
fn sharded_sinks_match_unsharded_across_shard_counts() {
    let pts = generate(800, Distribution::Uniform, 0x5AAAD);
    let single = AreaQueryEngine::builder(&pts)
        .payload_bytes(PAYLOAD)
        .build();
    let live = indexed(&pts);
    let origin = p(0.35, 0.6);
    let space = unit_space();
    let areas: Vec<Polygon> = (0..5)
        .map(|i| random_query_polygon(&space, &PolygonSpec::with_query_size(0.05), 880 + i))
        .collect();
    for shards in [1usize, 3, 8] {
        let sharded = ShardedAreaQueryEngine::build_with_payload(&pts, shards, PAYLOAD);
        assert_eq!(sharded.shard_count(), shards);
        for (ai, area) in areas.iter().enumerate() {
            let want = sorted_matches(&live, area);
            let ctx = format!("S={shards} area {ai}");

            for k in [0usize, 3, want.len() + 5] {
                let spec = QuerySpec::new().output(OutputMode::TopKNearest { k, origin });
                let got = sharded.execute(&spec, area);
                let knn: Vec<(u32, f64)> =
                    got.neighbors.iter().map(|n| (n.id, n.dist_sq)).collect();
                assert_eq!(knn, knn_oracle(&live, area, origin, k), "{ctx} knn k={k}");
                assert_eq!(got.count, knn.len(), "{ctx} knn count");
                let single_out = single.execute(&spec, area);
                assert_eq!(
                    got.neighbors.as_slice(),
                    single_out.neighbors().unwrap(),
                    "{ctx} knn vs unsharded"
                );
            }

            // Materialisation: the accepted set is identical, and the
            // per-shard stores hold byte-identical records, so the
            // *materialisation* reads (materialize − collect checksum
            // delta) match the unsharded engine exactly. Validation
            // reads are compared per method below: the traditional and
            // brute-force candidate sets partition across shards (full
            // checksum equality); the Voronoi BFS validates per-shard
            // boundary rings, so only its delta is comparable.
            for method in [
                QueryMethod::Voronoi,
                QueryMethod::Traditional,
                QueryMethod::BruteForce,
            ] {
                let base = QuerySpec::new().method(method);
                let mat_spec = base.output(OutputMode::Materialize);
                let got = sharded.execute(&mat_spec, area);
                assert_eq!(got.indices, want, "{ctx} {method:?} materialize indices");
                let got_delta = got
                    .stats
                    .payload_checksum
                    .wrapping_sub(sharded.execute(&base, area).stats.payload_checksum);
                let single_mat = single.execute(&mat_spec, area);
                let want_delta = single_mat
                    .stats()
                    .payload_checksum
                    .wrapping_sub(single.execute(&base, area).stats().payload_checksum);
                assert_eq!(
                    got_delta, want_delta,
                    "{ctx} {method:?}: materialisation reads are store-identical"
                );
            }
        }

        // On an area covering the whole data extent nothing is pruned
        // and the brute-force candidate set partitions exactly across
        // shards: validation + materialisation checksums match the
        // unsharded engine bit for bit — the strongest statement that
        // the split stores hold byte-identical records.
        let whole = Rect::new(p(-0.5, -0.5), p(1.5, 1.5));
        let spec = QuerySpec::brute_force().output(OutputMode::Materialize);
        let got = sharded.execute(&spec, &whole);
        assert_eq!(got.stats.shards_pruned, 0, "S={shards}");
        assert_eq!(
            got.stats.payload_checksum,
            single.execute(&spec, &whole).stats().payload_checksum,
            "S={shards}: full-coverage brute force sums every record identically"
        );

        // The batch path agrees with the single path for both new sinks.
        for spec in [
            QuerySpec::new().output(OutputMode::TopKNearest { k: 6, origin }),
            QuerySpec::new().output(OutputMode::Materialize),
        ] {
            let one_by_one: Vec<_> = areas.iter().map(|a| sharded.execute(&spec, a)).collect();
            for threads in [1usize, 2, 8] {
                let outs = sharded.execute_batch(&spec, &areas, threads);
                for (i, (got, want)) in outs.iter().zip(&one_by_one).enumerate() {
                    let ctx = format!("S={shards} area {i} threads={threads}");
                    assert_eq!(got.indices, want.indices, "{ctx}");
                    assert_eq!(got.neighbors, want.neighbors, "{ctx}");
                    assert_eq!(got.count, want.count, "{ctx}");
                    assert_eq!(
                        got.stats.payload_checksum, want.stats.payload_checksum,
                        "{ctx}"
                    );
                }
            }
        }
    }
}

/// Exact distance ties: symmetric points at binary-exact coordinates
/// produce bit-equal `dist_sq`; the tie must break by ascending index on
/// every path (the plain engine, every shard count, and the dynamic
/// engine with its external ids).
#[test]
fn knn_tie_distances_break_by_id_on_every_path() {
    // A 5×5 grid at multiples of 0.25: distances to the exact centre
    // (0.5, 0.5) collide in groups (4 at 0.25², 4 at 0.25²·2, …).
    let mut pts = Vec::new();
    for i in 0..5 {
        for j in 0..5 {
            pts.push(p(f64::from(i) * 0.25, f64::from(j) * 0.25));
        }
    }
    let live = indexed(&pts);
    let origin = p(0.5, 0.5);
    let area = Rect::new(p(-0.1, -0.1), p(1.1, 1.1));
    let single = AreaQueryEngine::build(&pts);
    // k = 3 cuts through the first tie group (centre + 4 equidistant
    // orthogonal neighbours): the two smallest-id neighbours win.
    for k in [1usize, 3, 6, 25] {
        let want = knn_oracle(&live, &area, origin, k);
        let spec = QuerySpec::new().output(OutputMode::TopKNearest { k, origin });
        let got: Vec<(u32, f64)> = single
            .execute(&spec, &area)
            .neighbors()
            .unwrap()
            .iter()
            .map(|n| (n.id, n.dist_sq))
            .collect();
        assert_eq!(got, want, "plain k={k}");
        for shards in [1usize, 3, 8] {
            let sharded = ShardedAreaQueryEngine::build(&pts, shards);
            let got: Vec<(u32, f64)> = sharded
                .execute(&spec, &area)
                .neighbors
                .iter()
                .map(|n| (n.id, n.dist_sq))
                .collect();
            assert_eq!(got, want, "S={shards} k={k}");
        }
        // Dynamic: same points, external ids == input indices.
        let mut dynamic = DynamicAreaQueryEngine::new(&pts);
        let got: Vec<(u64, f64)> = dynamic
            .execute(&spec, &area)
            .neighbors
            .iter()
            .map(|n| (n.id, n.dist_sq))
            .collect();
        let want64: Vec<(u64, f64)> = want.iter().map(|&(id, d)| (u64::from(id), d)).collect();
        assert_eq!(got, want64, "dynamic k={k}");
    }
}

/// Every sink on both dynamic engines agrees with a live-set oracle
/// under interleaved insert / remove / compact, for S ∈ {1, 3, 8} on
/// the sharded variant. Tombstoned points must never occupy kNN slots.
#[test]
fn dynamic_sinks_agree_under_interleaved_updates() {
    for shards in [1usize, 3, 8] {
        let mut rng = StdRng::seed_from_u64(0xD15C ^ shards as u64);
        let initial = generate(220, Distribution::Uniform, 0xF00 + shards as u64);
        let mut flat = DynamicAreaQueryEngine::new(&initial);
        let mut sharded = ShardedDynamicAreaQueryEngine::new(&initial, shards);
        let mut live: Vec<(u64, Point)> = initial
            .iter()
            .enumerate()
            .map(|(i, &q)| (i as u64, q))
            .collect();
        let origin = p(0.5, 0.5);
        for step in 0..120 {
            match rng.gen_range(0..10) {
                0..=3 => {
                    let q = p(rng.gen::<f64>() * 1.2 - 0.1, rng.gen::<f64>() * 1.2 - 0.1);
                    let a = flat.insert(q);
                    let b = sharded.insert(q);
                    assert_eq!(a, b, "lockstep ids");
                    live.push((a, q));
                }
                4..=5 => {
                    if !live.is_empty() {
                        let (id, _) = live[rng.gen_range(0..live.len())];
                        assert!(flat.remove(id));
                        assert!(sharded.remove(id));
                        live.retain(|&(i, _)| i != id);
                    }
                }
                6 => {
                    flat.maybe_compact();
                    sharded.maybe_compact();
                }
                _ => {
                    let half = 0.08 + rng.gen::<f64>() * 0.3;
                    let c = p(rng.gen(), rng.gen());
                    let area = Rect::new(p(c.x - half, c.y - half), p(c.x + half, c.y + half));
                    let want_ids: Vec<u64> = {
                        let mut v: Vec<u64> = live
                            .iter()
                            .filter(|(_, q)| area.contains(*q))
                            .map(|&(id, _)| id)
                            .collect();
                        v.sort_unstable();
                        v
                    };
                    let ctx = format!("S={shards} step {step}");
                    // Collect.
                    let flat_out = flat.execute(&QuerySpec::new(), &area);
                    let shard_out = sharded.execute(&QuerySpec::new(), &area);
                    assert_eq!(flat_out.ids, want_ids, "{ctx} flat collect");
                    assert_eq!(shard_out.ids, want_ids, "{ctx} sharded collect");
                    // Count: no ids materialised, count in result_size.
                    let count_spec = QuerySpec::new().output(OutputMode::Count);
                    let flat_count = flat.execute(&count_spec, &area);
                    assert!(flat_count.ids.is_empty(), "{ctx}");
                    assert_eq!(flat_count.stats.result_size, want_ids.len(), "{ctx}");
                    assert_eq!(
                        sharded.execute(&count_spec, &area).stats.result_size,
                        want_ids.len(),
                        "{ctx}"
                    );
                    // kNN, including k = 0 and k >= matches.
                    for k in [0usize, 2, want_ids.len() + 3] {
                        let spec = QuerySpec::new().output(OutputMode::TopKNearest { k, origin });
                        let want = knn_oracle(&live, &area, origin, k);
                        for (name, out) in [
                            ("flat", flat.execute(&spec, &area)),
                            ("sharded", sharded.execute(&spec, &area)),
                        ] {
                            let got: Vec<(u64, f64)> =
                                out.neighbors.iter().map(|n| (n.id, n.dist_sq)).collect();
                            assert_eq!(got, want, "{ctx} {name} knn k={k}");
                            let mut ids: Vec<u64> = want.iter().map(|&(id, _)| id).collect();
                            ids.sort_unstable();
                            assert_eq!(out.ids, ids, "{ctx} {name} knn ids k={k}");
                        }
                    }
                    // Materialise: dynamic bases carry no record store, so
                    // it degrades to collection with a zero checksum.
                    let mat =
                        flat.execute(&QuerySpec::new().output(OutputMode::Materialize), &area);
                    assert_eq!(mat.ids, want_ids, "{ctx} flat materialize");
                    assert_eq!(mat.stats.payload_checksum, 0, "{ctx}");
                }
            }
        }
    }
}

/// Stats conservation: for both new sinks, the per-shard breakdown
/// counters sum exactly to the merged counters (the `maybe_compact`
/// double-count class of bug), and the one-shot prepared-cache traffic
/// is reported once at the merge level — never once per shard.
#[test]
fn sharded_stats_conserve_for_new_sinks() {
    let pts = generate(600, Distribution::Uniform, 0xC0157);
    let sharded = ShardedAreaQueryEngine::build_with_payload(&pts, 5, PAYLOAD);
    let area = random_query_polygon(&unit_space(), &PolygonSpec::with_query_size(0.2), 4242);
    let origin = p(0.5, 0.5);
    for (name, output) in [
        ("knn", OutputMode::TopKNearest { k: 7, origin }),
        ("materialize", OutputMode::Materialize),
    ] {
        for prepare in [PrepareMode::Raw, PrepareMode::Cached] {
            let spec = QuerySpec::new().output(output).prepare(prepare);
            let out = sharded.execute(&spec, &area);
            assert!(
                out.stats.shards_visited >= 2,
                "{name}: a 20%-size area must hit several shards"
            );
            let mut sum = voronoi_area_query::core::QueryStats::default();
            for b in &out.breakdown {
                assert_eq!(
                    b.stats.prepared_cache,
                    Default::default(),
                    "{name} {prepare:?}: shard-level stats must not carry \
the one-shot preparation (double-count audit)"
                );
                sum.absorb_shard(&b.stats);
            }
            let mut merged = out.stats;
            // Fields owned by the merge level, not the shards: visit
            // accounting, the one-shot cache traffic, and the final
            // result size (a bounded sink keeps fewer than the shards
            // emitted; collect-shaped sinks keep exactly the sum).
            merged.shards_visited = 0;
            merged.shards_pruned = 0;
            merged.prepared_cache = Default::default();
            if name == "materialize" {
                assert_eq!(merged.result_size, sum.result_size, "{name} {prepare:?}");
            }
            merged.result_size = sum.result_size;
            assert_eq!(merged, sum, "{name} {prepare:?}: per-shard counters sum");
            let expected_cache = if prepare == PrepareMode::Cached {
                voronoi_area_query::core::CacheCounters { hits: 0, misses: 1 }
            } else {
                Default::default()
            };
            assert_eq!(
                out.stats.prepared_cache, expected_cache,
                "{name} {prepare:?}"
            );
        }
    }
}

/// `shards = 0` auto-tunes to the machine's available parallelism —
/// first step of the shard-count auto-tuning roadmap item.
#[test]
fn zero_shards_auto_tunes_to_available_parallelism() {
    let pts = generate(300, Distribution::Uniform, 0xA070);
    let auto = ShardedAreaQueryEngine::build(&pts, 0);
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    assert_eq!(auto.shard_count(), hw.min(pts.len()));
    // Auto-tuned engines answer exactly like explicit ones.
    let explicit = ShardedAreaQueryEngine::build(&pts, hw);
    let area = Rect::new(p(0.2, 0.2), p(0.7, 0.8));
    assert_eq!(
        auto.execute(&QuerySpec::new(), &area).indices,
        explicit.execute(&QuerySpec::new(), &area).indices
    );
    // The payload constructor and the dynamic engine accept it too.
    let auto_payload = ShardedAreaQueryEngine::build_with_payload(&pts, 0, 64);
    assert_eq!(auto_payload.shard_count(), hw.min(pts.len()));
    let dynamic = ShardedDynamicAreaQueryEngine::new(&pts, 0);
    assert_eq!(dynamic.base().shard_count(), hw.min(pts.len()));
}
