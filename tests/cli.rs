//! End-to-end test of the `vaq` command-line binary: CSV in, WKT area,
//! results/count/SVG out.

use std::process::Command;

fn vaq() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vaq"))
}

fn write_points(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("pts.csv");
    let mut csv = String::from("x,y\n");
    // A 10×10 jittered grid, deterministic.
    for i in 0..100 {
        let x = f64::from(i % 10) / 10.0 + 0.05;
        let y = f64::from(i / 10) / 10.0 + 0.05;
        csv.push_str(&format!("{x},{y}\n"));
    }
    std::fs::write(&path, csv).expect("write csv");
    path
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("vaq-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn query_count_matches_both_methods() {
    let dir = temp_dir("count");
    let pts = write_points(&dir);
    let out = vaq()
        .args([
            "query",
            "--points",
            pts.to_str().unwrap(),
            "--area",
            "POLYGON ((0.0 0.0, 0.5 0.0, 0.5 0.5, 0.0 0.5))",
            "--method",
            "both",
            "--count",
        ])
        .output()
        .expect("run vaq");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The quarter square holds the 5×5 sub-grid.
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "25");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("voronoi:"), "{stderr}");
    assert!(stderr.contains("traditional:"), "{stderr}");
}

#[test]
fn prepared_query_matches_raw_query() {
    let dir = temp_dir("prepared");
    let pts = write_points(&dir);
    let area = "POLYGON ((0.0 0.0, 1.0 0.0, 1.0 1.0, 0.0 1.0), \
                (0.2 0.2, 0.8 0.2, 0.8 0.8, 0.2 0.8))";
    let run = |prepared: bool| -> Vec<String> {
        let mut args = vec![
            "query",
            "--points",
            pts.to_str().unwrap(),
            "--area",
            area,
            "--method",
            "both",
        ];
        if prepared {
            args.push("--prepared");
        }
        let out = vaq().args(&args).output().expect("run vaq");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::str::from_utf8(&out.stdout)
            .unwrap()
            .lines()
            .map(String::from)
            .collect()
    };
    let raw = run(false);
    let prepared = run(true);
    assert!(!raw.is_empty());
    assert_eq!(raw, prepared, "--prepared must not change results");
}

#[test]
fn query_lists_indices() {
    let dir = temp_dir("list");
    let pts = write_points(&dir);
    let out = vaq()
        .args([
            "query",
            "--points",
            pts.to_str().unwrap(),
            "--area",
            "POLYGON ((0.0 0.0, 0.22 0.0, 0.22 0.22, 0.0 0.22))",
        ])
        .output()
        .expect("run vaq");
    assert!(out.status.success());
    let ids: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    // Points (0.05,0.05), (0.15,0.05), (0.05,0.15), (0.15,0.15) → ids 0,1,10,11.
    assert_eq!(ids, vec!["0", "1", "10", "11"]);
}

#[test]
fn query_supports_region_with_hole() {
    let dir = temp_dir("hole");
    let pts = write_points(&dir);
    let full = "POLYGON ((0.0 0.0, 1.0 0.0, 1.0 1.0, 0.0 1.0))";
    let holed = "POLYGON ((0.0 0.0, 1.0 0.0, 1.0 1.0, 0.0 1.0), \
                 (0.2 0.2, 0.8 0.2, 0.8 0.8, 0.2 0.8))";
    let count = |wkt: &str| -> usize {
        let out = vaq()
            .args([
                "query",
                "--points",
                pts.to_str().unwrap(),
                "--area",
                wkt,
                "--count",
            ])
            .output()
            .expect("run vaq");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).trim().parse().unwrap()
    };
    assert_eq!(count(full), 100);
    // The hole (0.2..0.8)² strictly excludes the 5×5 inner grid points at
    // 0.25..0.75 → wait: 0.25,0.35,...,0.75 is 6 values; points ON the hole
    // boundary stay in the region, and none of the grid points lie on it.
    let inner = (0..100)
        .filter(|i| {
            let x = f64::from(i % 10) / 10.0 + 0.05;
            let y = f64::from(i / 10) / 10.0 + 0.05;
            (0.2..=0.8).contains(&x) && (0.2..=0.8).contains(&y)
        })
        .count();
    assert_eq!(count(holed), 100 - inner);
}

#[test]
fn window_query_matches_equivalent_polygon() {
    let dir = temp_dir("window");
    let pts = write_points(&dir);
    let run = |args: &[&str]| -> Vec<String> {
        let out = vaq()
            .args(["query", "--points", pts.to_str().unwrap()])
            .args(args)
            .output()
            .expect("run vaq");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::str::from_utf8(&out.stdout)
            .unwrap()
            .lines()
            .map(String::from)
            .collect()
    };
    // Same closed rectangle as window and as WKT polygon.
    let windowed = run(&["--window", "0.1,0.1,0.5,0.5", "--method", "both"]);
    let polygonal = run(&[
        "--area",
        "POLYGON ((0.1 0.1, 0.5 0.1, 0.5 0.5, 0.1 0.5))",
        "--method",
        "both",
    ]);
    assert!(!windowed.is_empty());
    assert_eq!(windowed, polygonal, "window and polygon queries agree");
    // Brute-force method and counting work on windows too.
    let counted = run(&[
        "--window",
        "0.1,0.1,0.5,0.5",
        "--method",
        "brute",
        "--count",
    ]);
    assert_eq!(counted, vec![windowed.len().to_string()]);
    // Malformed and degenerate windows fail cleanly (non-zero exit, a
    // diagnostic on stderr, no panic backtrace).
    for bad in [
        "0.1,0.1,0.5",         // too few coordinates
        "a,b,c,d",             // not numbers
        "0.1,0.1,0.5,0.5,0.9", // too many coordinates
        "0.5,0.1,0.1,0.5",     // x0 > x1 (flipped)
        "0.1,0.5,0.5,0.1",     // y0 > y1 (flipped)
        "0.5,0.1,0.5,0.5",     // zero width
        "0.1,0.5,0.5,0.5",     // zero height
        "NaN,0.1,0.5,0.5",     // NaN coordinate
        "0.1,inf,0.5,0.5",     // infinite coordinate
    ] {
        let out = vaq()
            .args(["query", "--points", pts.to_str().unwrap(), "--window", bad])
            .output()
            .expect("run vaq");
        assert!(!out.status.success(), "--window {bad:?} should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--window"),
            "--window {bad:?} should explain itself: {stderr}"
        );
        assert!(
            !stderr.contains("panicked"),
            "--window {bad:?} must not panic: {stderr}"
        );
    }
}

#[test]
fn sharded_query_matches_unsharded() {
    let dir = temp_dir("sharded");
    let pts = write_points(&dir);
    let run = |extra: &[&str]| {
        let mut args = vec![
            "query",
            "--points",
            pts.to_str().unwrap(),
            "--area",
            "POLYGON ((0.0 0.0, 0.62 0.0, 0.55 0.55, 0.0 0.48))",
            "--method",
            "both",
        ];
        args.extend_from_slice(extra);
        let out = vaq().args(&args).output().expect("run vaq");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    let (unsharded, _) = run(&[]);
    let (sharded, stderr) = run(&["--shards", "4"]);
    assert_eq!(unsharded, sharded, "--shards must not change the indices");
    assert!(stderr.contains("4 shards over 100 points"), "{stderr}");
    assert!(stderr.contains("shards visited"), "{stderr}");

    // Bad shard counts fail cleanly with a diagnostic, not a panic.
    for bad in ["0", "minus", "", "-3", "1.5"] {
        let out = vaq()
            .args([
                "query",
                "--points",
                pts.to_str().unwrap(),
                "--window",
                "0.1,0.1,0.5,0.5",
                "--shards",
                bad,
            ])
            .output()
            .expect("run vaq");
        assert!(!out.status.success(), "--shards {bad:?} should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--shards"),
            "--shards {bad:?} should explain itself: {stderr}"
        );
        assert!(
            !stderr.contains("panicked"),
            "--shards {bad:?} must not panic: {stderr}"
        );
    }
}

/// `--threads N|auto` routes the query through the batch executor's
/// worker pool: bit-identical stdout to the in-line path (plain and
/// sharded, auto and pinned methods), a worker-count line on stderr,
/// and clean diagnostics for malformed counts.
#[test]
fn threads_flag_matches_inline_and_fails_cleanly() {
    let dir = temp_dir("threads");
    let pts = write_points(&dir);
    let run = |extra: &[&str]| {
        let mut args = vec![
            "query",
            "--points",
            pts.to_str().unwrap(),
            "--area",
            "POLYGON ((0.0 0.0, 0.62 0.0, 0.55 0.55, 0.0 0.48))",
            "--method",
            "both",
        ];
        args.extend_from_slice(extra);
        let out = vaq().args(&args).output().expect("run vaq");
        assert!(
            out.status.success(),
            "{extra:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    let (inline, _) = run(&[]);
    assert!(!inline.is_empty());
    for threads in ["1", "2", "auto", "0"] {
        let (threaded, stderr) = run(&["--threads", threads]);
        assert_eq!(
            threaded, inline,
            "--threads {threads} must not change the indices"
        );
        assert!(
            stderr.contains("worker thread"),
            "--threads {threads} should report its worker count: {stderr}"
        );
    }
    // `auto` and `0` resolve to the same worker count.
    let worker_line = |stderr: &str| {
        stderr
            .lines()
            .find(|l| l.contains("worker thread"))
            .map(str::to_owned)
    };
    let (_, auto_err) = run(&["--threads", "auto"]);
    let (_, zero_err) = run(&["--threads", "0"]);
    assert_eq!(worker_line(&auto_err), worker_line(&zero_err));

    // The sharded batch path agrees with the sharded in-line path too.
    let (sharded_inline, _) = run(&["--shards", "3"]);
    let (sharded_threaded, stderr) = run(&["--shards", "3", "--threads", "2"]);
    assert_eq!(sharded_inline, inline);
    assert_eq!(sharded_threaded, inline);
    assert!(stderr.contains("worker thread"), "{stderr}");

    // Bad worker counts fail cleanly with a diagnostic, not a panic.
    for bad in ["-2", "1.5", "minus", ""] {
        let out = vaq()
            .args([
                "query",
                "--points",
                pts.to_str().unwrap(),
                "--window",
                "0.1,0.1,0.5,0.5",
                "--threads",
                bad,
            ])
            .output()
            .expect("run vaq");
        assert!(!out.status.success(), "--threads {bad:?} should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--threads"),
            "--threads {bad:?} should explain itself: {stderr}"
        );
        assert!(
            !stderr.contains("panicked"),
            "--threads {bad:?} must not panic: {stderr}"
        );
    }
}

#[test]
fn info_reports_dataset_facts() {
    let dir = temp_dir("info");
    let pts = write_points(&dir);
    let out = vaq()
        .args(["info", "--points", pts.to_str().unwrap()])
        .output()
        .expect("run vaq");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("points:            100"), "{stdout}");
    assert!(stdout.contains("hull vertices:"), "{stdout}");
}

#[test]
fn svg_writes_a_scene() {
    let dir = temp_dir("svg");
    let pts = write_points(&dir);
    let svg_path = dir.join("scene.svg");
    let out = vaq()
        .args([
            "svg",
            "--points",
            pts.to_str().unwrap(),
            "--area",
            "POLYGON ((0.1 0.1, 0.6 0.15, 0.3 0.7))",
            "--out",
            svg_path.to_str().unwrap(),
        ])
        .output()
        .expect("run vaq");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let svg = std::fs::read_to_string(&svg_path).expect("svg written");
    assert!(svg.starts_with("<svg"));
    assert!(svg.contains("<circle"));
}

#[test]
fn bad_inputs_fail_cleanly() {
    let dir = temp_dir("bad");
    let pts = write_points(&dir);
    // Missing area.
    let out = vaq()
        .args(["query", "--points", pts.to_str().unwrap()])
        .output()
        .expect("run vaq");
    assert!(!out.status.success());
    // Malformed WKT.
    let out = vaq()
        .args([
            "query",
            "--points",
            pts.to_str().unwrap(),
            "--area",
            "POLYGON ((not numbers))",
        ])
        .output()
        .expect("run vaq");
    assert!(!out.status.success());
    // Missing file.
    let out = vaq()
        .args(["info", "--points", "/nonexistent/file.csv"])
        .output()
        .expect("run vaq");
    assert!(!out.status.success());
}

/// `--knn K --at X,Y`: the K nearest matches to the origin, nearest
/// first, ties by index — identical across the unsharded and sharded
/// (including `auto`) paths.
#[test]
fn knn_query_prints_nearest_matches() {
    let dir = temp_dir("knn");
    let pts = write_points(&dir);
    let base = [
        "query",
        "--points",
        pts.to_str().unwrap(),
        "--window",
        "0.0,0.0,0.5,0.5",
        "--knn",
        "3",
        "--at",
        "0.0,0.0",
    ];
    let run = |extra: &[&str]| {
        let mut args: Vec<&str> = base.to_vec();
        args.extend_from_slice(extra);
        let out = vaq().args(&args).output().expect("run vaq");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let plain = run(&[]);
    let lines: Vec<&str> = plain.lines().collect();
    assert_eq!(lines.len(), 3, "{plain}");
    // The grid corner (0.05, 0.05) is point 0; the two next-nearest
    // (0.15, 0.05) = 1 and (0.05, 0.15) = 10 tie exactly, so the
    // smaller index prints first.
    assert!(lines[0].starts_with("0 "), "{plain}");
    assert!(lines[1].starts_with("1 "), "{plain}");
    assert!(lines[2].starts_with("10 "), "{plain}");
    assert_eq!(
        run(&["--shards", "4"]),
        plain,
        "--shards must not change kNN"
    );
    assert_eq!(run(&["--shards", "auto"]), plain, "auto shards too");

    // --count prints the number of neighbours kept.
    let mut args: Vec<&str> = base.to_vec();
    args.push("--count");
    let out = vaq().args(&args).output().expect("run vaq");
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "3");
}

/// `--payload-bytes N` materialises every matching record: indices stay
/// identical to the plain query, and the checksum line appears — the
/// same value on the sharded path (per-shard stores split from one
/// logical store).
#[test]
fn payload_query_reports_checksums_and_same_indices() {
    let dir = temp_dir("payload");
    let pts = write_points(&dir);
    let run = |extra: &[&str]| {
        let mut args = vec![
            "query",
            "--points",
            pts.to_str().unwrap(),
            "--window",
            "0.0,0.0,0.5,0.5",
        ];
        args.extend_from_slice(extra);
        let out = vaq().args(&args).output().expect("run vaq");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    let (plain, _) = run(&[]);
    let (with_payload, stderr) = run(&["--payload-bytes", "512", "--method", "brute"]);
    assert_eq!(plain, with_payload, "payload must not change the indices");
    assert!(stderr.contains("payload checksum 0x"), "{stderr}");
    // The sharded path reports the same checksum for the brute-force
    // method (candidates partition exactly across shards).
    let (sharded, sharded_err) = run(&[
        "--payload-bytes",
        "512",
        "--method",
        "brute",
        "--shards",
        "3",
    ]);
    assert_eq!(sharded, plain);
    let checksum_line = |s: &str| {
        s.lines()
            .find(|l| l.contains("payload checksum"))
            .map(str::trim_start)
            .map(|l| l.split_whitespace().nth(2).unwrap_or("").to_string())
    };
    assert_eq!(
        checksum_line(&stderr),
        checksum_line(&sharded_err),
        "{sharded_err}"
    );
}

/// `--method auto` routes through the cost-model planner: identical
/// indices to the explicit methods (plain and sharded), `--verbose`
/// prints the chosen plan, and forcing planner-owned knobs alongside it
/// fails cleanly.
#[test]
fn auto_method_plans_and_rejects_conflicts() {
    let dir = temp_dir("auto");
    let pts = write_points(&dir);
    let run = |extra: &[&str]| {
        let mut args = vec![
            "query",
            "--points",
            pts.to_str().unwrap(),
            "--area",
            "POLYGON ((0.0 0.0, 0.62 0.0, 0.55 0.55, 0.0 0.48))",
        ];
        args.extend_from_slice(extra);
        let out = vaq().args(&args).output().expect("run vaq");
        assert!(
            out.status.success(),
            "{extra:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    let (want, _) = run(&["--method", "voronoi"]);
    assert!(!want.is_empty());

    let (auto_out, stderr) = run(&["--method", "auto", "--verbose"]);
    assert_eq!(auto_out, want, "auto must return the explicit indices");
    assert!(stderr.contains("auto:"), "{stderr}");
    assert!(
        stderr.contains("plan") && stderr.contains("predicted"),
        "--verbose should print the chosen plan: {stderr}"
    );

    let (sharded, sharded_err) = run(&["--method", "auto", "--shards", "4", "--verbose"]);
    assert_eq!(sharded, want, "sharded auto agrees too");
    assert!(sharded_err.contains("plan"), "{sharded_err}");

    // Pinning the policy is allowed with an explicit method …
    let (cell, _) = run(&["--method", "voronoi", "--policy", "cell"]);
    assert_eq!(cell, want, "--policy cell must not change the answer");

    // … but planner-owned knobs conflict with `--method auto`.
    let expect_fail = |extra: &[&str], needle: &str| {
        let mut args = vec![
            "query",
            "--points",
            pts.to_str().unwrap(),
            "--window",
            "0.1,0.1,0.5,0.5",
        ];
        args.extend_from_slice(extra);
        let out = vaq().args(&args).output().expect("run vaq");
        assert!(!out.status.success(), "{extra:?} should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{extra:?}: {stderr}");
        assert!(!stderr.contains("panicked"), "{extra:?}: {stderr}");
    };
    expect_fail(&["--method", "auto", "--policy", "cell"], "--policy");
    expect_fail(&["--method", "auto", "--prepared"], "--prepared");
    expect_fail(
        &["--method", "auto", "--shards", "2", "--prepared"],
        "--prepared",
    );
    expect_fail(&["--policy", "diagonal"], "--policy");
}

/// `--weights FILE|uniform:R` builds the power-diagram engine: indices
/// are identical to the unweighted query (weights shape cells, not
/// membership), uniform weights normalise to the Euclidean diagram, and
/// malformed weight inputs fail with diagnostics, not panics.
#[test]
fn weights_flag_keeps_indices_and_fails_cleanly() {
    let dir = temp_dir("weights");
    let pts = write_points(&dir);
    let run = |extra: &[&str]| {
        let mut args = vec![
            "query",
            "--points",
            pts.to_str().unwrap(),
            "--area",
            "POLYGON ((0.0 0.0, 0.62 0.0, 0.55 0.55, 0.0 0.48))",
        ];
        args.extend_from_slice(extra);
        let out = vaq().args(&args).output().expect("run vaq");
        assert!(
            out.status.success(),
            "{extra:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    let (plain, _) = run(&[]);
    assert!(!plain.is_empty());

    // Uniform weights normalise away: same indices, Euclidean diagram.
    let (uniform, stderr) = run(&["--weights", "uniform:0.2"]);
    assert_eq!(uniform, plain, "uniform weights must not change results");
    assert!(stderr.contains("Euclidean"), "{stderr}");

    // A weights file with one dominating site: still the same indices
    // (hidden sites are points of the database like any other), and the
    // diagram line reports the Power form with its hidden count.
    let wpath = dir.join("weights.txt");
    let mut wfile = String::from("# one weight per point\n");
    for i in 0..100 {
        wfile.push_str(if i == 44 { "0.5\n" } else { "0.0001\n" });
    }
    std::fs::write(&wpath, wfile).expect("write weights");
    let (weighted, stderr) = run(&["--weights", wpath.to_str().unwrap()]);
    assert_eq!(weighted, plain, "site weights must not change membership");
    assert!(stderr.contains("Power"), "{stderr}");
    assert!(stderr.contains("hidden site"), "{stderr}");

    // The sharded path takes the same flag and returns the same answer.
    let (sharded, stderr) = run(&["--weights", wpath.to_str().unwrap(), "--shards", "3"]);
    assert_eq!(sharded, plain);
    assert!(stderr.contains("Power"), "{stderr}");

    // Malformed weight inputs fail with a diagnostic, not a panic.
    let nan_path = dir.join("nan.txt");
    std::fs::write(&nan_path, "0.1\nNaN\n0.2\n").expect("write weights");
    let short_path = dir.join("short.txt");
    std::fs::write(&short_path, "0.1\n0.2\n").expect("write weights");
    let expect_fail = |spec: &str, needle: &str| {
        let out = vaq()
            .args([
                "query",
                "--points",
                pts.to_str().unwrap(),
                "--window",
                "0.1,0.1,0.5,0.5",
                "--weights",
                spec,
            ])
            .output()
            .expect("run vaq");
        assert!(!out.status.success(), "--weights {spec:?} should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(needle),
            "--weights {spec:?} should explain itself: {stderr}"
        );
        assert!(
            !stderr.contains("panicked"),
            "--weights {spec:?} must not panic: {stderr}"
        );
    };
    expect_fail("uniform:abc", "radius");
    expect_fail("uniform:-0.5", "non-negative");
    expect_fail("uniform:NaN", "finite");
    expect_fail(nan_path.to_str().unwrap(), "finite");
    expect_fail(short_path.to_str().unwrap(), "2 weights for 100 points");
    expect_fail("/nonexistent/weights.txt", "cannot read");
}

/// The new flags reject inconsistent combinations with diagnostics, not
/// panics.
#[test]
fn knn_and_payload_flags_fail_cleanly() {
    let dir = temp_dir("knn-bad");
    let pts = write_points(&dir);
    let expect_fail = |extra: &[&str], needle: &str| {
        let mut args = vec![
            "query",
            "--points",
            pts.to_str().unwrap(),
            "--window",
            "0.1,0.1,0.5,0.5",
        ];
        args.extend_from_slice(extra);
        let out = vaq().args(&args).output().expect("run vaq");
        assert!(!out.status.success(), "{extra:?} should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{extra:?}: {stderr}");
        assert!(!stderr.contains("panicked"), "{extra:?}: {stderr}");
    };
    expect_fail(&["--knn", "3"], "--at");
    expect_fail(&["--at", "0.5,0.5"], "--knn");
    expect_fail(&["--knn", "3", "--at", "nope"], "--at");
    expect_fail(&["--knn", "3", "--at", "0.5"], "--at");
    expect_fail(&["--knn", "x", "--at", "0.5,0.5"], "--knn");
    expect_fail(
        &["--knn", "3", "--at", "0.5,0.5", "--payload-bytes", "64"],
        "mutually exclusive",
    );
    expect_fail(&["--payload-bytes", "big"], "--payload-bytes");
}
