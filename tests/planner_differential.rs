//! Differential suite for the cost-model query planner.
//!
//! Three contracts:
//!
//! * **Bit-identity** — a `QuerySpec::auto()` query returns exactly the
//!   indices and work counters of the explicit spec its recorded
//!   [`ExecutionPlan`] names, on all four execution paths (plain
//!   session, batch, dynamic, sharded). Only the "how was this
//!   computed" fields (`plan`, `prepared_cache`) may differ.
//! * **Near-oracle cost** — over a mixed sweep, the planner's total
//!   measured work (in the deterministic work units of
//!   [`Planner::observed_cost`]) stays within 1.5× of a per-query
//!   oracle that runs every `(method, policy)` pair and keeps the best.
//! * **Honest plans** (property) — the plan attached to the stats
//!   always names the path that executed it and a concrete
//!   (non-`Auto`) method.

use voronoi_area_query::core::{
    AreaQueryEngine, CacheCounters, DynamicAreaQueryEngine, ExpansionPolicy, PlannedPath, Planner,
    QueryArea, QueryMethod, QuerySpec, QueryStats, ShardedAreaQueryEngine,
};
use voronoi_area_query::geom::Polygon;
use voronoi_area_query::workload::{
    generate, mixed_query_polygons, random_query_polygon, unit_space, Distribution, PolygonSpec,
};

fn engine(n: usize, seed: u64) -> AreaQueryEngine {
    let pts = generate(n, Distribution::Uniform, seed);
    AreaQueryEngine::build(&pts)
}

/// The mixed sweep the planner has to navigate: sizes spanning both
/// sides of the Voronoi/traditional break-even.
fn areas(n: usize, base_seed: u64) -> Vec<Polygon> {
    mixed_query_polygons(&unit_space(), &[0.008, 0.03, 0.1, 0.3], n, base_seed)
}

/// Scrubs the fields a planned run is allowed to differ in from its
/// explicit twin: the plan record itself and the session-cache traffic.
fn scrub(stats: &QueryStats) -> QueryStats {
    let mut s = *stats;
    s.plan = None;
    s.prepared_cache = CacheCounters::default();
    s
}

#[test]
fn auto_is_bit_identical_to_its_plan_on_the_plain_path() {
    let engine = engine(4000, 0x91A1);
    for (i, area) in areas(12, 100).iter().enumerate() {
        // A fresh session for each side so cache state matches.
        let mut auto_session = engine.session();
        let auto_out = auto_session.execute(&QuerySpec::auto(), area);
        let plan = auto_out.stats().plan.expect("auto records a plan");
        assert_eq!(plan.path, PlannedPath::Plain, "area {i}");

        let mut explicit_session = engine.session();
        let explicit = explicit_session.execute(&plan.apply_to(&QuerySpec::auto()), area);
        assert!(
            explicit.stats().plan.is_none(),
            "explicit runs plan nothing"
        );
        assert_eq!(
            auto_out.result().unwrap().indices,
            explicit.result().unwrap().indices,
            "area {i}"
        );
        assert_eq!(
            scrub(auto_out.stats()),
            scrub(explicit.stats()),
            "area {i}: planned and explicit work counters must agree"
        );
    }
}

#[test]
fn auto_is_bit_identical_on_the_batch_path() {
    let engine = engine(4000, 0xBA7C);
    let areas = areas(16, 300);
    for threads in [1usize, 4] {
        let auto_outs = engine.execute_batch(&QuerySpec::auto(), &areas, threads);
        assert_eq!(auto_outs.len(), areas.len());
        for (i, (out, area)) in auto_outs.iter().zip(&areas).enumerate() {
            let plan = out.stats().plan.expect("auto records a plan");
            assert_eq!(plan.path, PlannedPath::Batch, "area {i}");
            let explicit = &engine.execute_batch(
                &plan.apply_to(&QuerySpec::auto()),
                std::slice::from_ref(area),
                1,
            )[0];
            assert_eq!(
                out.result().unwrap().indices,
                explicit.result().unwrap().indices,
                "area {i} threads {threads}"
            );
            assert_eq!(
                scrub(out.stats()),
                scrub(explicit.stats()),
                "area {i} threads {threads}"
            );
        }
    }
}

#[test]
fn auto_is_bit_identical_on_the_dynamic_path() {
    let points = generate(3000, Distribution::Uniform, 0xD1A);
    let (base, delta) = points.split_at(2800);
    let mut auto_engine = DynamicAreaQueryEngine::new(base);
    let mut explicit_engine = DynamicAreaQueryEngine::new(base);
    for &p in delta {
        auto_engine.insert(p);
        explicit_engine.insert(p);
    }
    for (i, area) in areas(10, 700).iter().enumerate() {
        let auto_out = auto_engine.execute(&QuerySpec::auto(), area);
        let plan = auto_out.stats.plan.expect("auto records a plan");
        assert_eq!(plan.path, PlannedPath::Dynamic, "area {i}");
        let explicit = explicit_engine.execute(&plan.apply_to(&QuerySpec::auto()), area);
        assert_eq!(auto_out.ids, explicit.ids, "area {i}");
        assert_eq!(scrub(&auto_out.stats), scrub(&explicit.stats), "area {i}");
    }
}

#[test]
fn auto_is_bit_identical_on_the_sharded_path() {
    let points = generate(6000, Distribution::Uniform, 0x5AD);
    let sharded = ShardedAreaQueryEngine::build(&points, 6);
    for (i, area) in areas(12, 900).iter().enumerate() {
        let auto_out = sharded.execute(&QuerySpec::auto(), area);
        let plan = auto_out.stats.plan.expect("auto records a plan");
        assert_eq!(plan.path, PlannedPath::Sharded, "area {i}");
        let explicit = sharded.execute(&plan.apply_to(&QuerySpec::auto()), area);
        assert_eq!(auto_out.indices, explicit.indices, "area {i}");
        assert_eq!(scrub(&auto_out.stats), scrub(&explicit.stats), "area {i}");
    }
    // The sharded batch path plans per area and stays in input order.
    let sweep = areas(8, 1500);
    for threads in [1usize, 4] {
        let outs = sharded.execute_batch(&QuerySpec::auto(), &sweep, threads);
        for (i, (out, area)) in outs.iter().zip(&sweep).enumerate() {
            let plan = out.stats.plan.expect("auto records a plan");
            assert_eq!(plan.path, PlannedPath::Sharded, "area {i}");
            let explicit = sharded.execute(&plan.apply_to(&QuerySpec::auto()), area);
            assert_eq!(out.indices, explicit.indices, "area {i} threads {threads}");
        }
    }
}

/// The planner's measured work over a mixed sweep stays within 1.5× of
/// the per-query oracle (the best `(method, policy)` pair, measured in
/// the same deterministic work units).
#[test]
fn planner_stays_within_oracle_budget() {
    let engine = engine(20_000, 0x04AC1E);
    let sweep = areas(40, 4000);
    let mut session = engine.session();
    let mut planner_units = 0.0f64;
    let mut oracle_units = 0.0f64;
    for area in &sweep {
        let k = area.complexity();
        let auto_out = session.execute(&QuerySpec::auto(), area);
        planner_units += Planner::observed_cost(auto_out.stats(), k);

        let mut best = f64::INFINITY;
        for method in [
            QueryMethod::Voronoi,
            QueryMethod::Traditional,
            QueryMethod::BruteForce,
        ] {
            for policy in [ExpansionPolicy::Segment, ExpansionPolicy::Cell] {
                let spec = QuerySpec::new().method(method).policy(policy);
                let out = engine.execute(&spec, area);
                best = best.min(Planner::observed_cost(out.stats(), k));
            }
        }
        oracle_units += best;
    }
    assert!(
        planner_units <= 1.5 * oracle_units,
        "planner spent {planner_units:.0} work units, oracle {oracle_units:.0} \
(ratio {:.2} > 1.5)",
        planner_units / oracle_units
    );
}

/// Property: on every path, the recorded plan names the executed path
/// and a concrete method, and its spec re-executes to the same count.
mod plan_honesty {
    use super::*;

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(24))]
        #[test]
        fn plan_names_the_executed_path(seed in 0u64..4000) {
            let points = generate(600, Distribution::Uniform, seed % 7 + 1);
            let space = unit_space();
            let size = 0.005 + (seed % 11) as f64 * 0.03;
            let area = random_query_polygon(&space, &PolygonSpec::with_query_size(size), seed);

            let plain = AreaQueryEngine::build(&points);
            let out = plain.execute(&QuerySpec::auto(), &area);
            let plan = out.stats().plan.expect("plain plan");
            proptest::prop_assert_eq!(plan.path, PlannedPath::Plain);
            let explicit = plain.execute(&plan.apply_to(&QuerySpec::auto()), &area);
            proptest::prop_assert_eq!(out.count(), explicit.count());

            let sharded = ShardedAreaQueryEngine::build(&points, 3);
            let out = sharded.execute(&QuerySpec::auto(), &area);
            let plan = out.stats.plan.expect("sharded plan");
            proptest::prop_assert_eq!(plan.path, PlannedPath::Sharded);
            proptest::prop_assert!(!QuerySpec::auto().method(plan.method).method.is_auto());

            let batch = plain.execute_batch(&QuerySpec::auto(), std::slice::from_ref(&area), 2);
            let plan = batch[0].stats().plan.expect("batch plan");
            proptest::prop_assert_eq!(plan.path, PlannedPath::Batch);
        }
    }
}
