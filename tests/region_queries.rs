//! Area queries over regions (polygons with holes) — the extension beyond
//! the paper's simple polygons. Both methods must agree with brute force
//! for donuts, multi-hole regions and hole-heavy edge cases.

use voronoi_area_query::core::{AreaQueryEngine, ExpansionPolicy, SeedIndex};
use voronoi_area_query::geom::{Point, Polygon, Region};
use voronoi_area_query::workload::{generate, Distribution};

fn p(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

fn square(cx: f64, cy: f64, half: f64) -> Polygon {
    Polygon::new(vec![
        p(cx - half, cy - half),
        p(cx + half, cy - half),
        p(cx + half, cy + half),
        p(cx - half, cy + half),
    ])
    .unwrap()
}

fn check(engine: &AreaQueryEngine, region: &Region, context: &str) {
    region
        .validate_nesting()
        .expect("test regions are well-nested");
    let mut want = engine.brute_force(region);
    want.sort_unstable();
    assert_eq!(
        engine.traditional(region).sorted_indices(),
        want,
        "{context}: traditional"
    );
    let mut scratch = engine.new_scratch();
    for policy in [ExpansionPolicy::Segment, ExpansionPolicy::Cell] {
        assert_eq!(
            engine
                .voronoi_with(region, policy, SeedIndex::RTree, &mut scratch)
                .sorted_indices(),
            want,
            "{context}: voronoi {policy:?}"
        );
    }
}

#[test]
fn donut_region() {
    let points = generate(4_000, Distribution::Uniform, 91);
    let engine = AreaQueryEngine::build(&points);
    let region = Region::new(square(0.5, 0.5, 0.35), vec![square(0.5, 0.5, 0.15)]);
    check(&engine, &region, "donut");
    // The hole actually excludes points: the full square finds more.
    let full = engine.brute_force(&square(0.5, 0.5, 0.35));
    let donut = engine.brute_force(&region);
    assert!(donut.len() < full.len());
}

#[test]
fn multi_hole_region() {
    let points = generate(5_000, Distribution::Uniform, 92);
    let engine = AreaQueryEngine::build(&points);
    let region = Region::new(
        square(0.5, 0.5, 0.45),
        vec![
            square(0.3, 0.3, 0.08),
            square(0.7, 0.3, 0.08),
            square(0.3, 0.7, 0.08),
            square(0.7, 0.7, 0.08),
        ],
    );
    check(&engine, &region, "four holes");
}

#[test]
fn concave_outer_with_hole() {
    let points = generate(4_000, Distribution::Uniform, 93);
    let engine = AreaQueryEngine::build(&points);
    let outer = Polygon::new(vec![
        p(0.1, 0.1),
        p(0.9, 0.15),
        p(0.85, 0.5),
        p(0.6, 0.45), // concave notch
        p(0.7, 0.85),
        p(0.15, 0.8),
    ])
    .unwrap();
    let region = Region::new(outer, vec![square(0.35, 0.4, 0.1)]);
    check(&engine, &region, "concave outer");
}

#[test]
fn hole_dominating_the_outer_ring() {
    // A thin ring: hole covers 96 % of the outer square's width — the
    // interior-point probe must land in the rim.
    let points = generate(6_000, Distribution::Uniform, 94);
    let engine = AreaQueryEngine::build(&points);
    let region = Region::new(square(0.5, 0.5, 0.45), vec![square(0.5, 0.5, 0.43)]);
    check(&engine, &region, "thin ring");
}

#[test]
fn region_with_clustered_data() {
    let points = generate(
        5_000,
        Distribution::Clustered {
            clusters: 6,
            sigma: 0.05,
        },
        95,
    );
    let engine = AreaQueryEngine::build(&points);
    let region = Region::new(square(0.5, 0.5, 0.4), vec![square(0.45, 0.55, 0.12)]);
    check(&engine, &region, "clustered donut");
}

#[test]
fn region_candidates_still_undercut_mbr() {
    // The paper's headline extends to regions: a donut's result is far
    // smaller than its MBR population, and the Voronoi candidates track
    // the result, not the MBR.
    let points = generate(20_000, Distribution::Uniform, 96);
    let engine = AreaQueryEngine::build(&points);
    let region = Region::new(square(0.5, 0.5, 0.4), vec![square(0.5, 0.5, 0.25)]);
    let trad = engine.traditional(&region);
    let voro = engine.voronoi(&region);
    assert_eq!(trad.sorted_indices(), voro.sorted_indices());
    assert!(
        voro.stats.candidates < trad.stats.candidates * 7 / 10,
        "voronoi {} vs traditional {}",
        voro.stats.candidates,
        trad.stats.candidates
    );
}
