//! Differential suite for the snapshot subsystem: an engine loaded from
//! a container must be **bit-identical** to the freshly built one — same
//! sorted indices *and* the same full `QueryStats` — on every execution
//! path (plain session, batch executor, dynamic overlay, sharded fan-out)
//! under both Euclidean and power diagrams. Plus the corruption matrix:
//! truncation at every section boundary, flipped payload and table bytes,
//! version and endianness mismatches must all surface as clean
//! `SnapshotError`s, never as garbage engines.

use proptest::prelude::*;
use voronoi_area_query::core::snapshot::{
    self, checksum64, SnapshotError, SnapshotKind, SNAPSHOT_PAGE, SNAPSHOT_VERSION,
};
use voronoi_area_query::core::{
    AreaQueryEngine, DynamicAreaQueryEngine, ExpansionPolicy, FilterIndex, OutputMode, PrepareMode,
    QueryArea, QueryMethod, QuerySpec, SeedIndex, ShardedAreaQueryEngine,
};
use voronoi_area_query::delaunay::DiagramKind;
use voronoi_area_query::geom::{Point, Polygon, Rect, Region};
use voronoi_area_query::workload::{
    generate, random_query_polygon, unit_space, Distribution, PolygonSpec,
};

fn p(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

fn oracle_sorted(single: &AreaQueryEngine, area: &dyn QueryArea) -> Vec<u32> {
    let mut v = single.brute_force(area);
    v.sort_unstable();
    v
}

/// Weights that force a genuine power diagram: mostly mild variation,
/// with a handful of dominant sites heavy enough to hide close
/// neighbours (exercising the hidden-site index on both sides).
fn power_weights(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            if i % 37 == 0 {
                0.02
            } else {
                1e-4 * ((i % 11) as f64)
            }
        })
        .collect()
}

/// The full `QuerySpec` grid the engines must agree on. Filter stays
/// `RTree` and the kd-tree seed is skipped: snapshots restore the
/// default index configuration.
fn spec_grid() -> Vec<QuerySpec> {
    let mut specs = Vec::new();
    for method in [
        QueryMethod::Voronoi,
        QueryMethod::Traditional,
        QueryMethod::BruteForce,
    ] {
        for seed in [SeedIndex::RTree, SeedIndex::DelaunayWalk] {
            for policy in [ExpansionPolicy::Segment, ExpansionPolicy::Cell] {
                for prepare in [
                    PrepareMode::Raw,
                    PrepareMode::PrepareOnce,
                    PrepareMode::Cached,
                ] {
                    specs.push(
                        QuerySpec::new()
                            .method(method)
                            .filter(FilterIndex::RTree)
                            .seed(seed)
                            .policy(policy)
                            .prepare(prepare)
                            .output(OutputMode::Collect),
                    );
                }
            }
        }
    }
    specs
}

/// Runs the spec grid through fresh sessions on both engines and demands
/// identical indices and **fully identical** `QueryStats` — including
/// candidate, predicate, hidden-site and prepared-cache counters. Both
/// sessions execute the same sequence from a cold start, so even the
/// cache traffic must line up bit for bit.
fn assert_plain_identical(
    fresh: &AreaQueryEngine,
    loaded: &AreaQueryEngine,
    area: &dyn QueryArea,
    context: &str,
) {
    assert_eq!(fresh.len(), loaded.len(), "{context}: point count");
    assert_eq!(
        fresh.diagram_kind(),
        loaded.diagram_kind(),
        "{context}: diagram kind"
    );
    let want = oracle_sorted(fresh, area);
    let mut fresh_session = fresh.session();
    let mut loaded_session = loaded.session();
    for spec in spec_grid() {
        let ctx = format!("{context}: {spec:?}");
        let a = fresh_session.execute(&spec, area);
        let b = loaded_session.execute(&spec, area);
        let ra = a.result().expect("collect output");
        let rb = b.result().expect("collect output");
        assert_eq!(ra.sorted_indices(), want, "{ctx} (fresh vs oracle)");
        assert_eq!(ra.sorted_indices(), rb.sorted_indices(), "{ctx} (indices)");
        assert_eq!(a.stats(), b.stats(), "{ctx} (full QueryStats)");
        let ca = fresh_session.execute(&spec.output(OutputMode::Count), area);
        let cb = loaded_session.execute(&spec.output(OutputMode::Count), area);
        assert_eq!(ca.count(), want.len(), "{ctx} (count mode)");
        assert_eq!(ca.stats(), cb.stats(), "{ctx} (count stats)");
    }
}

/// Same contract for the sharded engine: indices, count, the aggregate
/// stats and the per-shard breakdown all identical between a freshly
/// built engine and its snapshot round trip.
fn assert_sharded_identical(
    fresh: &ShardedAreaQueryEngine,
    loaded: &ShardedAreaQueryEngine,
    area: &dyn QueryArea,
    context: &str,
) {
    assert_eq!(fresh.len(), loaded.len(), "{context}: point count");
    assert_eq!(
        fresh.shard_count(),
        loaded.shard_count(),
        "{context}: shard count"
    );
    assert_eq!(
        fresh.shard_mbrs(),
        loaded.shard_mbrs(),
        "{context}: shard MBRs"
    );
    assert_eq!(
        fresh.shard_sizes(),
        loaded.shard_sizes(),
        "{context}: shard sizes"
    );
    for spec in spec_grid() {
        let ctx = format!("{context}: {spec:?}");
        let a = fresh.execute(&spec, area);
        let b = loaded.execute(&spec, area);
        assert_eq!(a.indices, b.indices, "{ctx} (indices)");
        assert_eq!(a.count, b.count, "{ctx} (count)");
        assert_eq!(a.stats, b.stats, "{ctx} (aggregate stats)");
        assert_eq!(
            a.breakdown.len(),
            b.breakdown.len(),
            "{ctx} (breakdown arity)"
        );
        for (sa, sb) in a.breakdown.iter().zip(&b.breakdown) {
            assert_eq!(sa.shard, sb.shard, "{ctx} (breakdown shard)");
            assert_eq!(sa.stats, sb.stats, "{ctx} (breakdown stats)");
        }
    }
}

fn star(seed: u64, size: f64) -> Polygon {
    random_query_polygon(&unit_space(), &PolygonSpec::with_query_size(size), seed)
}

// ---------------------------------------------------------------------
// Bit-identity: plain engine, Euclidean and power.
// ---------------------------------------------------------------------

#[test]
fn plain_euclidean_roundtrip_is_bit_identical() {
    let pts = generate(400, Distribution::Uniform, 0x5AFE);
    let fresh = AreaQueryEngine::build(&pts);
    let bytes = snapshot::engine_to_bytes(&fresh);
    let loaded = snapshot::engine_from_bytes(&bytes).expect("round trip");
    assert_eq!(loaded.diagram_kind(), DiagramKind::Euclidean);
    for (i, seed) in [0x10u64, 0x11, 0x12].iter().enumerate() {
        let area = star(*seed, 0.08);
        assert_plain_identical(&fresh, &loaded, &area, &format!("euclidean star {i}"));
    }
    let window = Rect::new(p(0.15, 0.2), p(0.7, 0.75));
    assert_plain_identical(&fresh, &loaded, &window, "euclidean window");
    let outer = Polygon::new(vec![p(0.1, 0.1), p(0.9, 0.15), p(0.85, 0.9), p(0.12, 0.8)]).unwrap();
    let hole = Polygon::new(vec![p(0.4, 0.4), p(0.6, 0.42), p(0.58, 0.6), p(0.42, 0.58)]).unwrap();
    let region = Region::new(outer, vec![hole]);
    assert_plain_identical(&fresh, &loaded, &region, "euclidean region with hole");
}

#[test]
fn plain_power_roundtrip_is_bit_identical() {
    let pts = generate(
        380,
        Distribution::Clustered {
            clusters: 6,
            sigma: 0.04,
        },
        0xBEEF,
    );
    let weights = power_weights(pts.len());
    let fresh = AreaQueryEngine::build_weighted(&pts, &weights);
    assert_eq!(fresh.diagram_kind(), DiagramKind::Power);
    let bytes = snapshot::engine_to_bytes(&fresh);
    let loaded = snapshot::engine_from_bytes(&bytes).expect("round trip");
    assert_eq!(loaded.diagram_kind(), DiagramKind::Power);
    for (i, seed) in [0x21u64, 0x22].iter().enumerate() {
        let area = star(*seed, 0.1);
        assert_plain_identical(&fresh, &loaded, &area, &format!("power star {i}"));
    }
    let window = Rect::new(p(0.05, 0.05), p(0.95, 0.5));
    assert_plain_identical(&fresh, &loaded, &window, "power window");
}

#[test]
fn payload_records_survive_the_roundtrip() {
    let pts = generate(250, Distribution::Uniform, 0xFEED);
    let fresh = AreaQueryEngine::builder(&pts).payload_bytes(64).build();
    let bytes = snapshot::engine_to_bytes(&fresh);
    let loaded = snapshot::engine_from_bytes(&bytes).expect("round trip");
    let a = fresh.record_store().expect("fresh store");
    let b = loaded.record_store().expect("loaded store");
    assert_eq!(a.record_bytes(), b.record_bytes());
    assert_eq!(a.len(), b.len());
    for i in 0..a.len() as u32 {
        assert_eq!(a.read(i), b.read(i), "record {i} digest");
    }
    // Materialized queries ride the restored store identically.
    let area = star(0x31, 0.12);
    let spec = QuerySpec::voronoi().output(OutputMode::Materialize);
    let out_a = fresh.session().execute(&spec, &area);
    let out_b = loaded.session().execute(&spec, &area);
    assert_eq!(
        out_a.result().unwrap().sorted_indices(),
        out_b.result().unwrap().sorted_indices()
    );
    assert_eq!(out_a.stats(), out_b.stats());
}

// ---------------------------------------------------------------------
// Bit-identity: batch executor.
// ---------------------------------------------------------------------

#[test]
fn batch_execution_is_bit_identical_after_load() {
    let pts = generate(420, Distribution::Uniform, 0xBA7C);
    let fresh = AreaQueryEngine::build(&pts);
    let loaded =
        snapshot::engine_from_bytes(&snapshot::engine_to_bytes(&fresh)).expect("round trip");
    let areas: Vec<Polygon> = (0..8).map(|i| star(0x40 + i, 0.07)).collect();
    for workers in [1usize, 3] {
        let outs_a = fresh.execute_batch(&QuerySpec::voronoi(), &areas, workers);
        let outs_b = loaded.execute_batch(&QuerySpec::voronoi(), &areas, workers);
        assert_eq!(outs_a.len(), outs_b.len());
        for (i, (a, b)) in outs_a.iter().zip(&outs_b).enumerate() {
            assert_eq!(
                a.result().unwrap().sorted_indices(),
                b.result().unwrap().sorted_indices(),
                "batch area {i}, workers {workers}"
            );
            assert_eq!(a.stats(), b.stats(), "batch area {i} stats");
        }
    }
}

// ---------------------------------------------------------------------
// Bit-identity: dynamic engine with a live overlay.
// ---------------------------------------------------------------------

#[test]
fn dynamic_overlay_roundtrip_is_bit_identical() {
    let pts = generate(300, Distribution::Uniform, 0xD1A);
    let weights = power_weights(pts.len());
    let mut fresh = DynamicAreaQueryEngine::with_weights(&pts, &weights);
    // Mutate: inserts (plain and weighted), removes of base and delta
    // ids, so the saved overlay carries every kind of entry.
    let a = fresh.insert(p(0.101, 0.202));
    let _b = fresh.insert_weighted(p(0.303, 0.404), 0.015);
    let c = fresh.insert(p(0.505, 0.606));
    assert!(fresh.remove(a));
    assert!(fresh.remove(7)); // a base id
    assert!(fresh.remove(11)); // another base id
    let _ = c;

    let bytes = snapshot::dynamic_to_bytes(&fresh);
    let mut loaded = snapshot::dynamic_from_bytes(&bytes).expect("round trip");

    for (i, seed) in [0x51u64, 0x52, 0x53].iter().enumerate() {
        let area = star(*seed, 0.1);
        let ids_a = fresh.query(&area);
        let ids_b = loaded.query(&area);
        assert_eq!(ids_a, ids_b, "dynamic query ids, area {i}");
        for method in [QueryMethod::Voronoi, QueryMethod::Traditional] {
            let spec = QuerySpec::new().method(method);
            let ra = fresh.execute(&spec, &area);
            let rb = loaded.execute(&spec, &area);
            assert_eq!(ra.ids, rb.ids, "dynamic {method:?} ids, area {i}");
            assert_eq!(ra.stats, rb.stats, "dynamic {method:?} stats, area {i}");
        }
    }

    // New ids minted after the round trip must not collide.
    let na = fresh.insert(p(0.707, 0.808));
    let nb = loaded.insert(p(0.707, 0.808));
    assert_eq!(na, nb, "next_id restored exactly");
}

// ---------------------------------------------------------------------
// Bit-identity: sharded engine, Euclidean and power, with payloads.
// ---------------------------------------------------------------------

#[test]
fn sharded_roundtrip_is_bit_identical() {
    let pts = generate(500, Distribution::Uniform, 0x5AAD);
    for shards in [1usize, 5] {
        let fresh = ShardedAreaQueryEngine::build(&pts, shards);
        let loaded =
            snapshot::sharded_from_bytes(&snapshot::sharded_to_bytes(&fresh)).expect("round trip");
        for (i, seed) in [0x61u64, 0x62].iter().enumerate() {
            let area = star(*seed, 0.08);
            assert_sharded_identical(
                &fresh,
                &loaded,
                &area,
                &format!("sharded S={shards} star {i}"),
            );
        }
        let window = Rect::new(p(0.45, 0.05), p(0.55, 0.95)); // crosses splits
        assert_sharded_identical(
            &fresh,
            &loaded,
            &window,
            &format!("sharded S={shards} thin"),
        );
    }
}

#[test]
fn sharded_weighted_payload_roundtrip_is_bit_identical() {
    let pts = generate(
        360,
        Distribution::Clustered {
            clusters: 5,
            sigma: 0.05,
        },
        0xC0C0A,
    );
    let weights = power_weights(pts.len());
    let fresh = ShardedAreaQueryEngine::build_weighted_with_payload(&pts, &weights, 4, 32);
    assert_eq!(fresh.diagram_kind(), DiagramKind::Power);
    assert_eq!(fresh.payload_record_bytes(), Some(32));
    let loaded =
        snapshot::sharded_from_bytes(&snapshot::sharded_to_bytes(&fresh)).expect("round trip");
    assert_eq!(loaded.diagram_kind(), DiagramKind::Power);
    assert_eq!(loaded.payload_record_bytes(), Some(32));
    for (i, seed) in [0x71u64, 0x72].iter().enumerate() {
        let area = star(*seed, 0.1);
        assert_sharded_identical(&fresh, &loaded, &area, &format!("sharded power {i}"));
    }
}

// ---------------------------------------------------------------------
// The typed-kind funnel.
// ---------------------------------------------------------------------

#[test]
fn from_bytes_dispatches_on_kind_and_typed_loads_reject_mismatches() {
    let pts = generate(120, Distribution::Uniform, 0x99);
    let plain = snapshot::engine_to_bytes(&AreaQueryEngine::build(&pts));
    let sharded = snapshot::sharded_to_bytes(&ShardedAreaQueryEngine::build(&pts, 3));
    assert_eq!(
        snapshot::from_bytes(&plain).expect("plain").kind(),
        SnapshotKind::Plain
    );
    assert_eq!(
        snapshot::from_bytes(&sharded).expect("sharded").kind(),
        SnapshotKind::Sharded
    );
    match snapshot::engine_from_bytes(&sharded) {
        Err(SnapshotError::WrongKind { found, expected }) => {
            assert_eq!(found, SnapshotKind::Sharded);
            assert_eq!(expected, SnapshotKind::Plain);
        }
        Err(e) => panic!("expected WrongKind, got {e}"),
        Ok(_) => panic!("sharded bytes decoded as a plain engine"),
    }
    let info = snapshot::inspect_bytes(&plain).expect("inspect");
    assert_eq!(info.kind, SnapshotKind::Plain);
    assert_eq!(info.version, SNAPSHOT_VERSION);
    assert_eq!(info.file_len as usize, plain.len());
    assert!(info.sections >= 1);
    assert!(!info.build_params.is_empty());
}

// ---------------------------------------------------------------------
// Corruption matrix. The on-disk layout is pinned by
// `layout_fingerprint`, so the tests may parse the section table
// directly: entries of 32 bytes (tag, offset, len, checksum) at 128.
// ---------------------------------------------------------------------

fn u64_at(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap())
}

/// (tag, offset, len) for every section in the container.
fn section_table(bytes: &[u8]) -> Vec<(u64, usize, usize)> {
    let count = u64_at(bytes, 32) as usize;
    (0..count)
        .map(|i| {
            let e = 128 + 32 * i;
            (
                u64_at(bytes, e),
                u64_at(bytes, e + 8) as usize,
                u64_at(bytes, e + 16) as usize,
            )
        })
        .collect()
}

fn sample_container() -> Vec<u8> {
    let pts = generate(260, Distribution::Uniform, 0xC0FFEE);
    let weights = power_weights(pts.len());
    snapshot::sharded_to_bytes(&ShardedAreaQueryEngine::build_weighted_with_payload(
        &pts, &weights, 3, 16,
    ))
}

#[test]
fn truncation_at_every_section_boundary_is_a_clean_error() {
    let bytes = sample_container();
    let mut cuts: Vec<usize> = vec![0, 1, 64, 127, 128];
    for (_, offset, len) in section_table(&bytes) {
        cuts.push(offset);
        cuts.push(offset + len / 2);
        cuts.push(offset + len);
    }
    cuts.push(bytes.len() - 1);
    for cut in cuts {
        let cut = cut.min(bytes.len() - 1);
        match snapshot::from_bytes(&bytes[..cut]) {
            Err(SnapshotError::Truncated { needed, actual }) => {
                assert_eq!(actual as usize, cut, "cut at {cut}");
                assert!(needed as usize > cut, "cut at {cut}");
            }
            Err(e) => panic!("cut at {cut}: expected Truncated, got {e}"),
            Ok(_) => panic!("cut at {cut}: truncated container loaded"),
        }
    }
}

#[test]
fn flipped_byte_in_every_section_is_a_checksum_mismatch() {
    let bytes = sample_container();
    for (tag, offset, len) in section_table(&bytes) {
        let mut evil = bytes.clone();
        evil[offset + len / 2] ^= 0x40;
        match snapshot::from_bytes(&evil) {
            Err(SnapshotError::ChecksumMismatch { section, .. }) => {
                assert_eq!(section, tag, "flip inside section {tag:#x}");
            }
            Err(e) => panic!("section {tag:#x}: expected ChecksumMismatch, got {e}"),
            Ok(_) => panic!("section {tag:#x}: corrupted payload loaded"),
        }
    }
}

#[test]
fn flipped_table_byte_is_a_table_checksum_mismatch() {
    let mut bytes = sample_container();
    bytes[128 + 8] ^= 0x01; // first entry's offset field
    match snapshot::from_bytes(&bytes) {
        Err(SnapshotError::ChecksumMismatch { section, .. }) => {
            assert_eq!(section, 0, "the table reports as section 0");
        }
        Err(e) => panic!("expected table ChecksumMismatch, got {e}"),
        Ok(_) => panic!("corrupted section table loaded"),
    }
}

#[test]
fn version_and_endianness_mismatches_are_rejected() {
    let mut versioned = sample_container();
    let bumped = (SNAPSHOT_VERSION + 1).to_le_bytes();
    versioned[8..12].copy_from_slice(&bumped);
    match snapshot::from_bytes(&versioned) {
        Err(SnapshotError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, SNAPSHOT_VERSION + 1);
            assert_eq!(supported, SNAPSHOT_VERSION);
        }
        Err(e) => panic!("expected UnsupportedVersion, got {e}"),
        Ok(_) => panic!("future-versioned container loaded"),
    }

    let mut swapped = sample_container();
    swapped[0..8].reverse(); // a big-endian writer's magic
    assert!(matches!(
        snapshot::from_bytes(&swapped),
        Err(SnapshotError::WrongEndian)
    ));

    let mut garbage = sample_container();
    garbage[0..8].copy_from_slice(b"NOTASNAP");
    assert!(matches!(
        snapshot::from_bytes(&garbage),
        Err(SnapshotError::BadMagic { .. })
    ));
}

#[test]
fn checksum64_separates_close_inputs() {
    assert_ne!(checksum64(b""), checksum64(&[0]));
    assert_ne!(checksum64(b"abcdefgh"), checksum64(b"abcdefgi"));
    assert_eq!(checksum64(b"vaq"), checksum64(b"vaq"));
}

// ---------------------------------------------------------------------
// Property: load(save(engine)) answers match the membership oracle.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random point sets and query areas: a plain engine rebuilt from
    /// its own snapshot answers exactly the brute-force membership
    /// oracle, Euclidean and power alike.
    #[test]
    fn loaded_engines_match_the_membership_oracle(
        seed in 0u64..100_000,
        n in 30usize..220,
        weighted in 0u32..2,
        qs_mil in 10u32..220,
    ) {
        let pts = generate(n, Distribution::Uniform, seed);
        let fresh = if weighted == 1 {
            AreaQueryEngine::build_weighted(&pts, &power_weights(n))
        } else {
            AreaQueryEngine::build(&pts)
        };
        let loaded =
            snapshot::engine_from_bytes(&snapshot::engine_to_bytes(&fresh)).expect("round trip");
        let area = random_query_polygon(
            &unit_space(),
            &PolygonSpec::with_query_size(f64::from(qs_mil) / 1000.0),
            seed ^ 0x5EED,
        );
        let want = oracle_sorted(&fresh, &area);
        let got = loaded.session().execute(&QuerySpec::voronoi(), &area);
        prop_assert_eq!(got.result().unwrap().sorted_indices(), want.clone());
        let trad = loaded.session().execute(&QuerySpec::traditional(), &area);
        prop_assert_eq!(trad.result().unwrap().sorted_indices(), want);
    }

    /// Random sharded engines survive the round trip with identical
    /// answers and aggregate counters.
    #[test]
    fn loaded_sharded_engines_match_fresh_builds(
        seed in 0u64..100_000,
        n in 30usize..200,
        shards in 1usize..9,
    ) {
        let pts = generate(n, Distribution::Uniform, seed);
        let fresh = ShardedAreaQueryEngine::build(&pts, shards);
        let loaded = snapshot::sharded_from_bytes(&snapshot::sharded_to_bytes(&fresh))
            .expect("round trip");
        let area = random_query_polygon(
            &unit_space(),
            &PolygonSpec::with_query_size(0.12),
            seed ^ 0xA5A5,
        );
        let a = fresh.execute(&QuerySpec::new(), &area);
        let b = loaded.execute(&QuerySpec::new(), &area);
        prop_assert_eq!(a.indices, b.indices);
        prop_assert_eq!(a.stats, b.stats);
    }
}

// Container geometry sanity rides the differential suite too: every
// section offset the table declares must be page-aligned.
#[test]
fn declared_section_offsets_are_page_aligned() {
    let bytes = sample_container();
    assert_eq!(bytes.len() % SNAPSHOT_PAGE, 0, "file is page-padded");
    for (tag, offset, _) in section_table(&bytes) {
        assert_eq!(offset % SNAPSHOT_PAGE, 0, "section {tag:#x} alignment");
    }
}
