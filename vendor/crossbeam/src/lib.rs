//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no crates.io access, so this vendored stub
//! maps the two crossbeam APIs the workspace uses onto the standard
//! library: `channel::bounded` (over `std::sync::mpsc::sync_channel`) and
//! `thread::scope` (over `std::thread::scope`).

#![forbid(unsafe_code)]

/// Bounded MPSC channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of a bounded channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the receiving side hung up.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned when the sending side hung up.
    #[derive(Debug)]
    pub struct RecvError;

    impl<T> Sender<T> {
        /// Blocks until the value is queued; errs when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives; errs when all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }
    }

    /// A bounded channel holding at most `cap` queued values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

/// Scoped threads (subset of `crossbeam::thread`).
pub mod thread {
    /// Handle for spawning threads inside a scope.
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle
        /// (crossbeam signature); the return handle joins on scope exit.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            inner.spawn(move || f(&Scope(inner)))
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined before
    /// returning. Unlike crossbeam, child panics propagate by re-panicking
    /// (the `Err` arm is therefore never constructed), which is
    /// indistinguishable for callers that `expect` the result.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope(s))))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn bounded_channel_roundtrip() {
        let (tx, rx) = super::channel::bounded::<u32>(1);
        std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = super::channel::bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn scoped_threads_join_and_return() {
        let data = [1, 2, 3];
        let sum = super::thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().expect("no panic")
        })
        .expect("scope does not panic");
        assert_eq!(sum, 6);
    }

    #[test]
    fn pipeline_shape_like_experiment_sweep() {
        // Mirrors the workload crate's build pipeline: producer thread +
        // bounded(1) channel + consumer in the scope body.
        let sizes = [10usize, 20, 30];
        let (tx, rx) = super::channel::bounded::<usize>(1);
        let mut out = Vec::new();
        super::thread::scope(|s| {
            s.spawn(|_| {
                for &n in &sizes {
                    if tx.send(n * 2).is_err() {
                        break;
                    }
                }
            });
            for _ in &sizes {
                out.push(rx.recv().expect("producer lives"));
            }
        })
        .expect("threads do not panic");
        assert_eq!(out, vec![20, 40, 60]);
    }
}
