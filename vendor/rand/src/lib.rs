//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored stub
//! implements exactly the subset of the `rand 0.8` API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen`,
//! `Rng::gen_range` and `Rng::gen_bool`. The generator is xoshiro256**
//! seeded through SplitMix64 — deterministic and high-quality, though the
//! streams differ from upstream `StdRng` (ChaCha12). Every consumer in
//! this repository only relies on determinism for a fixed seed, never on
//! the exact upstream byte stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Random number generators.
pub mod rngs {
    /// A deterministic, seedable generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

impl StdRng {
    fn next_raw(&mut self) -> u64 {
        // xoshiro256** by Blackman & Vigna (public domain).
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

/// Types that `Rng::gen` can produce uniformly.
pub trait Standard: Sized {
    /// Draws one uniformly-distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// Ranges `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % width;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % width;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_impls!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly-distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly-distributed value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(2.0..4.0f64);
            assert!((2.0..4.0).contains(&f));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            let x: f64 = rng.gen();
            buckets[(x * 10.0) as usize] += 1;
        }
        for b in buckets {
            assert!((8_000..12_000).contains(&b), "bucket {b} outside band");
        }
    }
}
