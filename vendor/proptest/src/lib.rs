//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored stub
//! implements the subset of the proptest API the workspace uses: the
//! `proptest!` macro with `#![proptest_config(...)]`, range / tuple /
//! array / collection strategies, `prop_map`, and the `prop_assert!`,
//! `prop_assert_eq!`, `prop_assume!` assertion macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs verbatim), and the random streams differ. Case generation is
//! fully deterministic per test (seeded from the test's module path and
//! name), so failures are reproducible run-to-run.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Per-test configuration (subset: case count).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail<S: Into<String>>(msg: S) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

/// Deterministic generator driving case generation (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test identifier string.
    pub fn from_name(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h | 1 }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform usize in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_strategy_impls {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % width;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_strategy_impls!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy_impls {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy_impls!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Fixed-size array strategies (`uniform4`, `uniform6`, `uniform8`, …).
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy for `[S::Value; N]` drawing each element from `S`.
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    macro_rules! uniform_ctor {
        ($($name:ident => $n:literal),* $(,)?) => {$(
            /// An array of independently-drawn elements.
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray { element }
            }
        )*};
    }

    uniform_ctor!(
        uniform2 => 2, uniform3 => 3, uniform4 => 4, uniform5 => 5,
        uniform6 => 6, uniform7 => 7, uniform8 => 8, uniform9 => 9,
        uniform10 => 10,
    );
}

/// Collection strategies (`vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Acceptable size arguments for [`vec()`]: a fixed size or a range.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below(self.end - self.start)
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// A vector of independently-drawn elements.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a proptest test module typically imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assert_eq failed: {:?} != {:?}",
                        left, right
                    )));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assert_eq failed: {:?} != {:?}: {}",
                        left, right,
                        format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (left, right) => {
                if *left == *right {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assert_ne failed: both {:?}",
                        left
                    )));
                }
            }
        }
    };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Supports the upstream surface this workspace
/// uses: an optional `#![proptest_config(...)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] items — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(config.cases);
            while passed < config.cases {
                attempts += 1;
                if attempts > max_attempts {
                    panic!(
                        "proptest '{}': too many rejected cases ({} attempts, {} passed)",
                        stringify!($name), attempts, passed
                    );
                }
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),*),
                    $(&$arg),*
                );
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match result {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "proptest '{}' failed after {} passing case(s): {}\n  inputs: {}",
                        stringify!($name), passed, msg, __inputs
                    ),
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = i64> {
        -4i64..5
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_resolve_and_stay_in_bounds(a in small(), b in 0u64..10, f in 0.0f64..1.0) {
            prop_assert!((-4..5).contains(&a));
            prop_assert!(b < 10);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn arrays_tuples_and_vecs(
            arr in crate::array::uniform4(0i64..3),
            pair in (0u64..5, 0.0f64..1.0),
            v in crate::collection::vec((0i64..3, 0i64..3), 2..7),
        ) {
            prop_assert_eq!(arr.len(), 4);
            prop_assert!(pair.0 < 5);
            prop_assert!(v.len() >= 2 && v.len() < 7);
        }

        #[test]
        fn prop_map_applies(x in (0i32..10).prop_map(|k| k * 2)) {
            prop_assert!(x % 2 == 0 && x < 20);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn early_ok_return_is_accepted(x in 0u64..10) {
            if x > 100 {
                prop_assert!(false, "unreachable");
            }
            return Ok(());
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("module::case");
        let mut b = crate::TestRng::from_name("module::case");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = crate::TestRng::from_name("module::other");
        assert_ne!(
            crate::TestRng::from_name("module::case").next_u64(),
            c.next_u64()
        );
    }

    #[test]
    #[should_panic(expected = "proptest 'failing' failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn failing(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        failing();
    }
}
