//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored stub
//! implements the subset of the Criterion API the bench harness uses:
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! group tuning (`sample_size`, `measurement_time`, `warm_up_time`),
//! `bench_function` / `bench_with_input`, `BenchmarkId` and `Bencher::iter`.
//!
//! Measurement is a plain warm-up + timed-batch loop reporting the mean
//! time per iteration to stdout — no statistics, plotting, or baseline
//! storage. Good enough to compare variants on one machine in one run.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("ungrouped");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<D: Display>(function_name: &str, parameter: D) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter<D: Display>(parameter: D) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark identifier (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The display label.
    fn label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn label(self) -> String {
        self
    }
}

/// A group of benchmarks sharing tuning parameters.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup {
    /// Sets the number of timed batches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total time budget for timed batches.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Times `f` and prints the mean per-iteration cost.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.label();
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        // Warm-up: run until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            b.reset();
            f(&mut b);
            if b.iters == 0 {
                break; // the closure never called iter(); nothing to time
            }
        }
        // Measurement: repeat batches until the budget is spent, capped at
        // `sample_size` batches.
        let mut total_iters: u64 = 0;
        let mut total_time = Duration::ZERO;
        let meas_start = Instant::now();
        for _ in 0..self.sample_size {
            b.reset();
            f(&mut b);
            total_iters += b.iters;
            total_time += b.elapsed;
            if meas_start.elapsed() >= self.measurement_time {
                break;
            }
        }
        if total_iters == 0 {
            println!("  {}/{label}: no iterations", self.name);
            return self;
        }
        let per_iter = total_time.as_secs_f64() / total_iters as f64;
        println!(
            "  {}/{label}: {} per iter ({} iters)",
            self.name,
            format_time(per_iter),
            total_iters
        );
        self
    }

    /// As [`BenchmarkGroup::bench_function`] with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn reset(&mut self) {
        self.iters = 0;
        self.elapsed = Duration::ZERO;
    }

    /// Times repeated calls of `f`, keeping results observable.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One calibration call, then a small batch: keeps expensive bodies
        // (engine builds) tolerable while amortising timer overhead for
        // cheap ones.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed();
        let batch = if once >= Duration::from_millis(10) {
            1
        } else {
            // Aim for ~10ms batches.
            (Duration::from_millis(10).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u64
        };
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        self.elapsed += once + start.elapsed();
        self.iters += 1 + batch;
    }
}

/// Re-export matching upstream's `criterion::black_box`.
pub use std::hint::black_box;

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        let mut calls = 0u64;
        group.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| {
                calls += 1;
                calls
            });
        });
        group.bench_with_input(BenchmarkId::new("input", 2), &41u32, |b, &x| {
            b.iter(|| x + 1);
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn ids_format_like_upstream() {
        assert_eq!(BenchmarkId::new("f", 32).label, "f/32");
        assert_eq!(BenchmarkId::from_parameter("p").label, "p");
    }
}
