//! Regenerates the paper's illustrative figures as SVG files:
//!
//! * `results/fig2_traditional.svg` / `results/fig2_voronoi.svg` — the
//!   candidate sets of the two methods for the same concave query (black =
//!   result, green = redundant candidates), the paper's Figure 2.
//! * `results/fig3_voronoi_delaunay.svg` — a Voronoi diagram overlaid with
//!   its dual Delaunay triangulation, the paper's Figure 3.
//!
//! ```text
//! cargo run --release --example visualize
//! ```

use std::fs;
use voronoi_area_query::core::{AreaQueryEngine, OutputMode, QuerySpec};
use voronoi_area_query::delaunay::{Triangulation, VoronoiDiagram};
use voronoi_area_query::geom::{Point, Polygon, Rect};
use voronoi_area_query::viz::{candidate_scene, Scene};
use voronoi_area_query::workload::{generate, Distribution};

fn main() {
    fs::create_dir_all("results").expect("create results dir");
    let world = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));

    // ---- Figure 2: candidate sets of the two methods. ----
    let points = generate(1200, Distribution::Uniform, 42);
    let engine = AreaQueryEngine::build(&points);
    // A concave area resembling the paper's sketch.
    let area = Polygon::new(vec![
        Point::new(0.25, 0.30),
        Point::new(0.50, 0.22),
        Point::new(0.75, 0.35),
        Point::new(0.68, 0.52),
        Point::new(0.78, 0.70),
        Point::new(0.52, 0.60), // deep notch
        Point::new(0.30, 0.75),
        Point::new(0.35, 0.52),
    ])
    .expect("simple polygon");

    let mut session = engine.session();
    let trad = session.execute(&QuerySpec::traditional(), &area);
    let voro = session.execute(&QuerySpec::voronoi(), &area);
    let trad = trad.into_result().expect("collect output");
    let voro = voro.into_result().expect("collect output");
    assert_eq!(trad.sorted_indices(), voro.sorted_indices());

    // Traditional candidates = everything in the MBR.
    let mbr_candidates: Vec<u32> = points
        .iter()
        .enumerate()
        .filter(|(_, p)| area.mbr().contains_point(**p))
        .map(|(i, _)| i as u32)
        .collect();
    let svg = candidate_scene(world, 600.0, &points, &area, &trad.indices, &mbr_candidates);
    fs::write("results/fig2_traditional.svg", svg).expect("write svg");

    // Voronoi candidates: rebuild the candidate list from stats by running
    // the classification — result + the boundary ring the BFS touched. For
    // the illustration we reconstruct it as result ∪ (validated − accepted)
    // via the classify output mode of the same funnel.
    let classified = session.execute(&QuerySpec::new().output(OutputMode::Classify), &area);
    let classes = classified.classes().expect("classify output").to_vec();
    let tri = engine.triangulation().expect("non-empty engine");
    let mut voro_candidates = voro.indices.clone();
    for (v, class) in classes.iter().enumerate() {
        if *class == voronoi_area_query::core::PointClass::Boundary {
            voro_candidates.extend_from_slice(tri.inputs_of(v as u32));
        }
    }
    let svg = candidate_scene(
        world,
        600.0,
        &points,
        &area,
        &voro.indices,
        &voro_candidates,
    );
    fs::write("results/fig2_voronoi.svg", svg).expect("write svg");
    println!(
        "fig2: result {}, traditional candidates {}, voronoi candidates ≈ {}",
        trad.stats.result_size,
        mbr_candidates.len(),
        voro_candidates.len()
    );

    // ---- Figure 3: Voronoi diagram + Delaunay dual. ----
    let pts = generate(60, Distribution::Uniform, 5);
    let tri = Triangulation::new(&pts).expect("finite points");
    let vd = VoronoiDiagram::new(&tri, world);
    let mut scene = Scene::new(world, 600.0);
    scene.voronoi_cells(&vd, "#3366cc", 1.0);
    scene.delaunay_edges(&tri, "#cc6633", 0.7);
    scene.points(&pts, 3.0, "black");
    fs::write("results/fig3_voronoi_delaunay.svg", scene.finish()).expect("write svg");
    println!(
        "fig3: {} sites, {} Delaunay edges, {} Voronoi cells",
        pts.len(),
        tri.edge_count(),
        vd.cells.len()
    );
    println!("wrote results/fig2_traditional.svg, results/fig2_voronoi.svg, results/fig3_voronoi_delaunay.svg");
}
