//! A living dataset: WKT-defined district queries over a point set that
//! receives inserts and deletes between queries, served by the
//! base + delta [`DynamicAreaQueryEngine`].
//!
//! ```text
//! cargo run --release --example dynamic_updates
//! ```

use voronoi_area_query::core::DynamicAreaQueryEngine;
use voronoi_area_query::geom::Point;
use voronoi_area_query::workload::io::{points_from_csv, region_from_wkt};
use voronoi_area_query::workload::{generate, Distribution};

fn main() {
    // Bootstrap from a CSV snapshot (here: inline; in practice a file).
    let snapshot = "x,y\n0.21,0.30\n0.47,0.52\n0.68,0.25\n0.81,0.77\n0.33,0.66\n";
    let mut points = points_from_csv(snapshot).expect("valid CSV");
    // Top it up with synthetic POIs.
    points.extend(generate(20_000, Distribution::Uniform, 314));

    let mut engine = DynamicAreaQueryEngine::new(&points);
    println!("bootstrapped with {} points", engine.len());

    // A district with a lake (hole) straight from WKT.
    let district = region_from_wkt(
        "POLYGON ((0.30 0.30, 0.70 0.28, 0.75 0.60, 0.52 0.72, 0.28 0.62), \
                  (0.45 0.42, 0.55 0.42, 0.55 0.52, 0.45 0.52))",
    )
    .expect("valid WKT");
    district.validate_nesting().expect("well-nested rings");

    let before = engine.query(&district);
    println!("district holds {} POIs (lake excluded)", before.len());

    // A new batch of POIs opens inside the district…
    let mut new_ids = Vec::new();
    for k in 0..50 {
        let t = f64::from(k) / 50.0;
        let id = engine.insert(Point::new(0.35 + 0.25 * t, 0.34 + 0.2 * t));
        new_ids.push(id);
    }
    // …and some close down.
    for &id in before.iter().take(20) {
        assert!(engine.remove(id));
    }
    let after = engine.query(&district);
    println!(
        "after 50 openings and 20 closures: {} POIs (delta buffer: {})",
        after.len(),
        engine.delta_len()
    );

    // Compaction folds the updates into a fresh base; answers are stable.
    engine.compact();
    let compacted = engine.query(&district);
    assert_eq!(after, compacted);
    println!(
        "compacted: {} POIs, delta buffer {} — answers unchanged",
        compacted.len(),
        engine.delta_len()
    );

    // The new ids survive compaction and remain addressable.
    assert!(engine.remove(new_ids[0]));
    assert_eq!(engine.query(&district).len(), compacted.len() - 1);
    println!("id stability across compaction: ok");
}
