//! Points-of-interest search in an administrative district — the workload
//! the paper's introduction motivates (urban planning / logistics GIS).
//!
//! A city's POIs are clustered around a few centres (shops cluster in
//! commercial zones). The analyst asks: *which POIs fall inside this
//! hand-drawn district?* The district is concave and looks nothing like
//! its bounding box, so the traditional MBR filter drags in whole
//! neighbouring blocks that the Voronoi method never touches. Dashboards
//! re-ask the same districts all day — exactly what the session's
//! prepared-area cache amortises.
//!
//! ```text
//! cargo run --release --example poi_search
//! ```

use voronoi_area_query::core::{AreaQueryEngine, PrepareMode, QuerySpec, SeedIndex};
use voronoi_area_query::geom::{Point, Polygon};
use voronoi_area_query::workload::{generate, Distribution};

fn main() {
    // 200 000 POIs clustered around 40 commercial centres.
    let pois = generate(
        200_000,
        Distribution::Clustered {
            clusters: 40,
            sigma: 0.03,
        },
        2024,
    );

    // The engine also builds a kd-tree so we can compare seed strategies.
    let engine = AreaQueryEngine::builder(&pois).with_kdtree().build();
    let mut session = engine.session();

    // A concave "district" traced along imaginary streets. Its MBR covers
    // ~9 % of the city; the district itself covers ~4 %.
    let district = Polygon::new(vec![
        Point::new(0.42, 0.30),
        Point::new(0.58, 0.33),
        Point::new(0.70, 0.28),
        Point::new(0.72, 0.42),
        Point::new(0.60, 0.45), // inlet
        Point::new(0.62, 0.55),
        Point::new(0.70, 0.60),
        Point::new(0.55, 0.62),
        Point::new(0.44, 0.58),
        Point::new(0.48, 0.45), // inlet
        Point::new(0.40, 0.42),
    ])
    .expect("district outline is a simple polygon");

    let mbr = district.mbr();
    println!(
        "district area {:.4}, MBR area {:.4} ({:.0}% waste)",
        district.area(),
        mbr.area(),
        100.0 * (1.0 - district.area() / mbr.area())
    );

    let traditional = session.execute(&QuerySpec::traditional(), &district);
    let traditional = traditional.result().expect("collect output");
    println!(
        "\ntraditional:  {} POIs found, {} candidates fetched, {} fetched in vain",
        traditional.stats.result_size,
        traditional.stats.candidates,
        traditional.stats.redundant_validations()
    );

    for (label, seed) in [
        ("voronoi + R-tree seed", SeedIndex::RTree),
        ("voronoi + kd-tree seed", SeedIndex::KdTree),
        ("voronoi + graph-walk seed", SeedIndex::DelaunayWalk),
    ] {
        let out = session.execute(&QuerySpec::voronoi().seed(seed), &district);
        let r = out.result().expect("collect output");
        assert_eq!(r.sorted_indices(), traditional.sorted_indices());
        println!(
            "{label:26}: {} POIs found, {} candidates fetched, {} fetched in vain",
            r.stats.result_size,
            r.stats.candidates,
            r.stats.redundant_validations()
        );
    }

    // The dashboard refreshes: the same district, served from the
    // prepared-area cache (hit on every repeat after the first).
    let cached = QuerySpec::voronoi().prepare(PrepareMode::Cached);
    for _ in 0..3 {
        let out = session.execute(&cached, &district);
        assert_eq!(out.count(), traditional.stats.result_size);
    }
    let totals = session.cache_counters();
    println!(
        "\ndashboard refreshes: {} cache hits / {} misses ({:.0}% hit rate)",
        totals.hits,
        totals.misses,
        100.0 * totals.hit_rate()
    );

    // A district on the city edge (partially outside the data extent)
    // still answers correctly.
    let edge_district = Polygon::new(vec![
        Point::new(0.9, 0.9),
        Point::new(1.2, 0.95),
        Point::new(1.1, 1.2),
        Point::new(0.85, 1.05),
    ])
    .expect("simple polygon");
    let out = session.execute(&QuerySpec::voronoi(), &edge_district);
    let r = out.result().expect("collect output");
    println!(
        "\nedge district: {} POIs (candidates {})",
        r.stats.result_size, r.stats.candidates
    );
    assert_eq!(
        r.sorted_indices(),
        engine.traditional(&edge_district).sorted_indices()
    );
}
