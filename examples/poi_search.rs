//! Points-of-interest search in an administrative district — the workload
//! the paper's introduction motivates (urban planning / logistics GIS).
//!
//! A city's POIs are clustered around a few centres (shops cluster in
//! commercial zones). The analyst asks: *which POIs fall inside this
//! hand-drawn district?* The district is concave and looks nothing like
//! its bounding box, so the traditional MBR filter drags in whole
//! neighbouring blocks that the Voronoi method never touches.
//!
//! ```text
//! cargo run --release --example poi_search
//! ```

use voronoi_area_query::core::{AreaQueryEngine, ExpansionPolicy, SeedIndex};
use voronoi_area_query::geom::{Point, Polygon};
use voronoi_area_query::workload::{generate, Distribution};

fn main() {
    // 200 000 POIs clustered around 40 commercial centres.
    let pois = generate(
        200_000,
        Distribution::Clustered {
            clusters: 40,
            sigma: 0.03,
        },
        2024,
    );

    // The engine also builds a kd-tree so we can compare seed strategies.
    let engine = AreaQueryEngine::builder(&pois).with_kdtree().build();

    // A concave "district" traced along imaginary streets. Its MBR covers
    // ~9 % of the city; the district itself covers ~4 %.
    let district = Polygon::new(vec![
        Point::new(0.42, 0.30),
        Point::new(0.58, 0.33),
        Point::new(0.70, 0.28),
        Point::new(0.72, 0.42),
        Point::new(0.60, 0.45), // inlet
        Point::new(0.62, 0.55),
        Point::new(0.70, 0.60),
        Point::new(0.55, 0.62),
        Point::new(0.44, 0.58),
        Point::new(0.48, 0.45), // inlet
        Point::new(0.40, 0.42),
    ])
    .expect("district outline is a simple polygon");

    let mbr = district.mbr();
    println!(
        "district area {:.4}, MBR area {:.4} ({:.0}% waste)",
        district.area(),
        mbr.area(),
        100.0 * (1.0 - district.area() / mbr.area())
    );

    let traditional = engine.traditional(&district);
    println!(
        "\ntraditional:  {} POIs found, {} candidates fetched, {} fetched in vain",
        traditional.stats.result_size,
        traditional.stats.candidates,
        traditional.stats.redundant_validations()
    );

    let mut scratch = engine.new_scratch();
    for (label, seed) in [
        ("voronoi + R-tree seed", SeedIndex::RTree),
        ("voronoi + kd-tree seed", SeedIndex::KdTree),
        ("voronoi + graph-walk seed", SeedIndex::DelaunayWalk),
    ] {
        let r = engine.voronoi_with(&district, ExpansionPolicy::Segment, seed, &mut scratch);
        assert_eq!(r.sorted_indices(), traditional.sorted_indices());
        println!(
            "{label:26}: {} POIs found, {} candidates fetched, {} fetched in vain",
            r.stats.result_size,
            r.stats.candidates,
            r.stats.redundant_validations()
        );
    }

    // A district on the city edge (partially outside the data extent)
    // still answers correctly.
    let edge_district = Polygon::new(vec![
        Point::new(0.9, 0.9),
        Point::new(1.2, 0.95),
        Point::new(1.1, 1.2),
        Point::new(0.85, 1.05),
    ])
    .expect("simple polygon");
    let r = engine.voronoi(&edge_district);
    println!(
        "\nedge district: {} POIs (candidates {})",
        r.stats.result_size, r.stats.candidates
    );
    assert_eq!(
        r.sorted_indices(),
        engine.traditional(&edge_district).sorted_indices()
    );
}
