//! Quickstart: build an engine over a point set and run an area query with
//! both methods.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use voronoi_area_query::core::AreaQueryEngine;
use voronoi_area_query::geom::{Point, Polygon};
use voronoi_area_query::workload::{generate, Distribution};

fn main() {
    // 50 000 uniformly distributed points in the unit square.
    let points = generate(50_000, Distribution::Uniform, 7);

    // Build both indexes once: an STR-packed R-tree (for the traditional
    // filter and the seed NN query) and the Delaunay triangulation (the
    // Voronoi-neighbour oracle).
    let engine = AreaQueryEngine::build(&points);

    // An irregular, concave query area — the case the paper targets: its
    // MBR covers far more ground than the polygon itself.
    let area = Polygon::new(vec![
        Point::new(0.30, 0.30),
        Point::new(0.55, 0.35),
        Point::new(0.80, 0.30),
        Point::new(0.60, 0.50), // concave notch
        Point::new(0.75, 0.75),
        Point::new(0.50, 0.62),
        Point::new(0.32, 0.72),
        Point::new(0.42, 0.50),
    ])
    .expect("a simple polygon");

    let traditional = engine.traditional(&area);
    let voronoi = engine.voronoi(&area);

    assert_eq!(
        traditional.sorted_indices(),
        voronoi.sorted_indices(),
        "both methods answer the same area query"
    );

    println!("points in area:          {}", voronoi.stats.result_size);
    println!(
        "candidates (traditional): {:>6}   redundant validations: {}",
        traditional.stats.candidates,
        traditional.stats.redundant_validations()
    );
    println!(
        "candidates (voronoi):     {:>6}   redundant validations: {}",
        voronoi.stats.candidates,
        voronoi.stats.redundant_validations()
    );
    let saved =
        100.0 * (1.0 - voronoi.stats.candidates as f64 / traditional.stats.candidates as f64);
    println!("candidates saved by the Voronoi method: {saved:.1}%");
}
