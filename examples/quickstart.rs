//! Quickstart: build an engine over a point set and run an area query with
//! both methods through the unified `QuerySpec`/`QuerySession` surface.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use voronoi_area_query::core::{AreaQueryEngine, OutputMode, QuerySpec};
use voronoi_area_query::geom::{Point, Polygon, Rect};
use voronoi_area_query::workload::{generate, Distribution};

fn main() {
    // 50 000 uniformly distributed points in the unit square.
    let points = generate(50_000, Distribution::Uniform, 7);

    // Build both indexes once: an STR-packed R-tree (for the traditional
    // filter and the seed NN query) and the Delaunay triangulation (the
    // Voronoi-neighbour oracle).
    let engine = AreaQueryEngine::build(&points);

    // A session owns the per-caller state: reusable scratch and the
    // prepared-area cache. One per thread, many queries each.
    let mut session = engine.session();

    // An irregular, concave query area — the case the paper targets: its
    // MBR covers far more ground than the polygon itself.
    let area = Polygon::new(vec![
        Point::new(0.30, 0.30),
        Point::new(0.55, 0.35),
        Point::new(0.80, 0.30),
        Point::new(0.60, 0.50), // concave notch
        Point::new(0.75, 0.75),
        Point::new(0.50, 0.62),
        Point::new(0.32, 0.72),
        Point::new(0.42, 0.50),
    ])
    .expect("a simple polygon");

    // The two methods are one spec field apart.
    let traditional = session.execute(&QuerySpec::traditional(), &area);
    let voronoi = session.execute(&QuerySpec::voronoi(), &area);
    let traditional = traditional.result().expect("collect output");
    let voronoi = voronoi.result().expect("collect output");

    assert_eq!(
        traditional.sorted_indices(),
        voronoi.sorted_indices(),
        "both methods answer the same area query"
    );

    println!("points in area:          {}", voronoi.stats.result_size);
    println!(
        "candidates (traditional): {:>6}   redundant validations: {}",
        traditional.stats.candidates,
        traditional.stats.redundant_validations()
    );
    println!(
        "candidates (voronoi):     {:>6}   redundant validations: {}",
        voronoi.stats.candidates,
        voronoi.stats.redundant_validations()
    );
    let saved =
        100.0 * (1.0 - voronoi.stats.candidates as f64 / traditional.stats.candidates as f64);
    println!("candidates saved by the Voronoi method: {saved:.1}%");

    // Counts ride the same funnel (same seeding, same counters) without
    // materialising the result; window queries are just a Rect area.
    let count_spec = QuerySpec::voronoi().output(OutputMode::Count);
    let n = session.execute(&count_spec, &area).count();
    assert_eq!(n, voronoi.stats.result_size);
    let window = Rect::new(Point::new(0.25, 0.25), Point::new(0.75, 0.75));
    println!(
        "points in the central window: {}",
        session.execute(&count_spec, &window).count()
    );
}
