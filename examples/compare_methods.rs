//! Side-by-side comparison of every method configuration on one dataset:
//! the two expansion policies, the three filter indexes and timing, over a
//! sweep of query sizes. A miniature of the paper's evaluation you can run
//! in seconds.
//!
//! ```text
//! cargo run --release --example compare_methods
//! ```

use std::time::Instant;
use voronoi_area_query::core::{AreaQueryEngine, ExpansionPolicy, FilterIndex, SeedIndex};
use voronoi_area_query::workload::{
    generate, random_query_polygon, unit_space, Distribution, PolygonSpec,
};

fn main() {
    const N: usize = 100_000;
    const REPS: u64 = 50;

    let points = generate(N, Distribution::Uniform, 99);
    let engine = AreaQueryEngine::builder(&points)
        .with_kdtree()
        .with_quadtree()
        .build();
    let mut scratch = engine.new_scratch();
    let space = unit_space();

    println!("dataset: {N} uniform points; {REPS} random 10-gon queries per size\n");
    println!(
        "{:<10} {:>10} {:>14} {:>14} {:>12} {:>12}",
        "query size", "result", "trad cand", "voro cand", "trad µs", "voro µs"
    );

    for qs in [0.01, 0.04, 0.16] {
        let spec = PolygonSpec::with_query_size(qs);
        let mut result = 0usize;
        let mut trad_cand = 0usize;
        let mut voro_cand = 0usize;
        let mut trad_us = 0.0;
        let mut voro_us = 0.0;
        for rep in 0..REPS {
            let poly = random_query_polygon(&space, &spec, 1000 + rep);

            let t = Instant::now();
            let rt = engine.traditional(&poly);
            trad_us += t.elapsed().as_secs_f64() * 1e6;

            let t = Instant::now();
            let rv = engine.voronoi_with(
                &poly,
                ExpansionPolicy::Segment,
                SeedIndex::RTree,
                &mut scratch,
            );
            voro_us += t.elapsed().as_secs_f64() * 1e6;

            assert_eq!(rt.sorted_indices(), rv.sorted_indices());
            result += rt.stats.result_size;
            trad_cand += rt.stats.candidates;
            voro_cand += rv.stats.candidates;
        }
        let k = REPS as f64;
        println!(
            "{:<10} {:>10.1} {:>14.1} {:>14.1} {:>12.1} {:>12.1}",
            format!("{}%", qs * 100.0),
            result as f64 / k,
            trad_cand as f64 / k,
            voro_cand as f64 / k,
            trad_us / k,
            voro_us / k
        );
    }

    // One polygon, every configuration: all must agree.
    let poly = random_query_polygon(&space, &PolygonSpec::with_query_size(0.02), 7777);
    let reference = engine.traditional(&poly).sorted_indices();
    println!(
        "\nagreement check on a 2% query ({} results):",
        reference.len()
    );
    for (name, filter) in [
        ("traditional/rtree", FilterIndex::RTree),
        ("traditional/kdtree", FilterIndex::KdTree),
        ("traditional/quadtree", FilterIndex::Quadtree),
    ] {
        let r = engine.traditional_with(&poly, filter);
        assert_eq!(r.sorted_indices(), reference);
        println!("  {name:24} ok ({} candidates)", r.stats.candidates);
    }
    for (name, policy) in [
        ("voronoi/segment", ExpansionPolicy::Segment),
        ("voronoi/cell", ExpansionPolicy::Cell),
    ] {
        let r = engine.voronoi_with(&poly, policy, SeedIndex::RTree, &mut scratch);
        assert_eq!(r.sorted_indices(), reference);
        println!(
            "  {name:24} ok ({} candidates, {} segment tests, {} cell tests)",
            r.stats.candidates, r.stats.segment_tests, r.stats.cell_tests
        );
    }
}
