//! Side-by-side comparison of every method configuration on one dataset:
//! the full `QuerySpec` grid — expansion policies, filter indexes, seed
//! indexes, prepare modes — and timing, over a sweep of query sizes. A
//! miniature of the paper's evaluation you can run in seconds.
//!
//! ```text
//! cargo run --release --example compare_methods
//! ```

use std::time::Instant;
use voronoi_area_query::core::{
    AreaQueryEngine, ExpansionPolicy, FilterIndex, PrepareMode, QuerySpec, SeedIndex,
};
use voronoi_area_query::workload::{
    generate, random_query_polygon, unit_space, Distribution, PolygonSpec,
};

fn main() {
    const N: usize = 100_000;
    const REPS: u64 = 50;

    let points = generate(N, Distribution::Uniform, 99);
    let engine = AreaQueryEngine::builder(&points)
        .with_kdtree()
        .with_quadtree()
        .build();
    let mut session = engine.session();
    let space = unit_space();

    println!("dataset: {N} uniform points; {REPS} random 10-gon queries per size\n");
    println!(
        "{:<10} {:>10} {:>14} {:>14} {:>12} {:>12}",
        "query size", "result", "trad cand", "voro cand", "trad µs", "voro µs"
    );

    let trad = QuerySpec::traditional();
    let voro = QuerySpec::voronoi();
    for qs in [0.01, 0.04, 0.16] {
        let spec = PolygonSpec::with_query_size(qs);
        let mut result = 0usize;
        let mut trad_cand = 0usize;
        let mut voro_cand = 0usize;
        let mut trad_us = 0.0;
        let mut voro_us = 0.0;
        for rep in 0..REPS {
            let poly = random_query_polygon(&space, &spec, 1000 + rep);

            let t = Instant::now();
            let rt = session.execute(&trad, &poly);
            trad_us += t.elapsed().as_secs_f64() * 1e6;

            let t = Instant::now();
            let rv = session.execute(&voro, &poly);
            voro_us += t.elapsed().as_secs_f64() * 1e6;

            let rt = rt.result().expect("collect output");
            let rv = rv.result().expect("collect output");
            assert_eq!(rt.sorted_indices(), rv.sorted_indices());
            result += rt.stats.result_size;
            trad_cand += rt.stats.candidates;
            voro_cand += rv.stats.candidates;
        }
        let k = REPS as f64;
        println!(
            "{:<10} {:>10.1} {:>14.1} {:>14.1} {:>12.1} {:>12.1}",
            format!("{}%", qs * 100.0),
            result as f64 / k,
            trad_cand as f64 / k,
            voro_cand as f64 / k,
            trad_us / k,
            voro_us / k
        );
    }

    // One polygon, the whole spec grid: all cells must agree.
    let poly = random_query_polygon(&space, &PolygonSpec::with_query_size(0.02), 7777);
    let reference = session
        .execute(&trad, &poly)
        .result()
        .expect("collect output")
        .sorted_indices();
    println!(
        "\nagreement check on a 2% query ({} results):",
        reference.len()
    );
    for (name, filter) in [
        ("traditional/rtree", FilterIndex::RTree),
        ("traditional/kdtree", FilterIndex::KdTree),
        ("traditional/quadtree", FilterIndex::Quadtree),
    ] {
        let out = session.execute(&trad.filter(filter), &poly);
        let r = out.result().expect("collect output");
        assert_eq!(r.sorted_indices(), reference);
        println!("  {name:24} ok ({} candidates)", r.stats.candidates);
    }
    for (name, policy) in [
        ("voronoi/segment", ExpansionPolicy::Segment),
        ("voronoi/cell", ExpansionPolicy::Cell),
    ] {
        for (seed_name, seed) in [
            ("rtree", SeedIndex::RTree),
            ("kdtree", SeedIndex::KdTree),
            ("walk", SeedIndex::DelaunayWalk),
        ] {
            let out = session.execute(&voro.policy(policy).seed(seed), &poly);
            let r = out.result().expect("collect output");
            assert_eq!(r.sorted_indices(), reference);
            println!(
                "  {:24} ok ({} candidates, {} segment tests, {} cell tests)",
                format!("{name}+{seed_name}"),
                r.stats.candidates,
                r.stats.segment_tests,
                r.stats.cell_tests
            );
        }
    }
    // Prepared modes answer bit-identically; Cached amortises the
    // preparation across repeats (watch the hit counter).
    for prepare in [PrepareMode::PrepareOnce, PrepareMode::Cached] {
        let out = session.execute(&voro.prepare(prepare), &poly);
        let r = out.result().expect("collect output");
        assert_eq!(r.sorted_indices(), reference);
        println!(
            "  {:24} ok (cache {}h/{}m)",
            format!("voronoi/{prepare:?}"),
            out.stats().prepared_cache.hits,
            out.stats().prepared_cache.misses,
        );
    }
    let again = session.execute(&voro.prepare(PrepareMode::Cached), &poly);
    assert_eq!(again.stats().prepared_cache.hits, 1);
    println!(
        "  repeated cached query     ok (session cache: {} hits, {} misses)",
        session.cache_counters().hits,
        session.cache_counters().misses
    );
}
